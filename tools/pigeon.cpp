//===- pigeon.cpp - The PIGEON command-line tool -----------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The cross-language tool the paper names PIGEON (§5.1), as a CLI:
///
///   pigeon extract --lang js [--length N --width N --abst A] FILE
///       Print the abstract path-contexts of one source file.
///
///   pigeon extract --lang js --task vars --out CTX PATH...
///       Parse every source file under the given paths and write the
///       extracted contexts as a pigeon.contexts.v1 artifact — the
///       parse+extract front half of training, persisted.
///
///   pigeon train --lang js --task vars|methods --out MODEL PATH...
///       Parse every source file under the given paths, train the CRF
///       name model, and save a self-contained model bundle.
///
///   pigeon train --from-contexts CTX --out MODEL
///       Train from a saved contexts artifact instead of sources; the
///       resulting bundle is byte-identical to direct training on the
///       same corpus.
///
///   pigeon eval --model MODEL (--from-contexts CTX | --lang js PATH...)
///       Measure a trained bundle's accuracy on a labelled corpus, given
///       either sources or a contexts artifact.
///
///   pigeon predict --model MODEL FILE
///       Predict names for a (possibly minified) file with a trained
///       bundle; prints top-3 candidates per element.
///
///   pigeon demo --lang js
///       Self-contained showcase: synthesize a corpus, train, strip a
///       held-out file and recover its names.
///
///   pigeon synth --lang js --out DIR [--projects N] [--seed S]
///       Write a synthetic corpus to disk (one file per function), ready
///       for `pigeon train`.
///
///   pigeon explain --lang js [--task vars|methods|types] [--top K]
///       Train on a synthetic corpus and decompose held-out predictions
///       into their top-K contributing AST paths (factor weight + vote
///       per path). With --trace, the same attributions are written as
///       `prediction` / `attribution` records into the event stream.
///
//===----------------------------------------------------------------------===//

#include "core/ContextsIO.h"
#include "core/Experiments.h"
#include "core/MappedBundle.h"
#include "core/ModelIO.h"
#include "lang/csharp/CsParser.h"
#include "lang/java/JavaParser.h"
#include "lang/js/JsParser.h"
#include "lang/python/PyParser.h"
#include "serve/Serve.h"
#include "serve/SlowLog.h"
#include "support/EventLog.h"
#include "support/Parallel.h"
#include "support/PhaseProfiler.h"
#include "support/TablePrinter.h"
#include "support/Telemetry.h"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

int usage() {
  std::cerr
      << "usage:\n"
         "  pigeon extract --lang <js|java|py|cs> [--length N] [--width N]"
         " [--abst NAME] FILE\n"
         "  pigeon extract --lang <js|java|py|cs> --task <vars|methods>"
         " --out CTX PATH...\n"
         "  pigeon train   --lang <js|java|py|cs> --task <vars|methods>"
         " --out MODEL PATH...\n"
         "  pigeon train   --from-contexts CTX --out MODEL\n"
         "  pigeon eval    --model MODEL"
         " (--from-contexts CTX | --lang <js|java|py|cs> PATH...)\n"
         "  pigeon predict --model MODEL FILE\n"
         "  pigeon migrate-bundle --in OLD --out NEW"
         " [--bundle-format <2|3>] [--check]\n"
         "  pigeon serve   --model MODEL"
         " (--socket PATH | --tcp HOST:PORT | --stdio)\n"
         "                 [--serve-workers N]\n"
         "                 [--batch N] [--queue N] [--slo-p99-ms MS]\n"
         "                 [--prom FILE] [--metrics-interval SECONDS]\n"
         "                 [--slow-log FILE] [--slow-trace-ms MS]\n"
         "                 [--flightrec FILE]\n"
         "  pigeon demo    --lang <js|java|py|cs>\n"
         "  pigeon synth   --lang <js|java|py|cs> --out DIR"
         " [--projects N] [--seed S]\n"
         "  pigeon explain --lang <js|java|py|cs>"
         " [--task <vars|methods|types>]\n"
         "                 [--top K] [--projects N] [--seed S]\n"
         "\n"
         "Every subcommand accepts --metrics FILE to write a JSON metrics\n"
         "snapshot (schema pigeon.metrics.v1) at exit; the PIGEON_METRICS\n"
         "environment variable is the fallback when the flag is absent.\n"
         "\n"
         "Every subcommand accepts --trace FILE to stream structured JSONL\n"
         "events (schema pigeon.events.v1): phase and per-chunk spans with\n"
         "wall/CPU/RSS, plus prediction-provenance records. PIGEON_TRACE\n"
         "is the fallback, and --trace-max-mb MB rotates the stream into\n"
         "byte-capped segments (the previous segment is kept at FILE.1).\n"
         "Both outputs are flushed best-effort even when the tool dies on\n"
         "an error or unhandled exception.\n"
         "\n"
         "Every subcommand accepts --threads N to size the worker pool for\n"
         "the sharded parse/extract/inference stages (0 = one per core);\n"
         "the PIGEON_THREADS environment variable is the fallback. Results\n"
         "are identical at any thread count.\n"
         "\n"
         "Every subcommand accepts --profile FILE to sample phase stacks\n"
         "(~97 Hz) and write a flamegraph.pl-compatible folded-stack report\n"
         "at exit. `pigeon serve` always samples (admin:\"profile\" reads it)\n"
         "and additionally accepts --prom FILE (Prometheus text exposition,\n"
         "rewritten every --metrics-interval seconds, default 10, alongside\n"
         "--metrics/--trace), --slo-p99-ms MS (the admin:\"slo\" target\n"
         "for the windowed serve.request.seconds p99), --slow-log FILE\n"
         "(tail sampling: requests slower than --slow-trace-ms — falling\n"
         "back to the SLO target — are captured with their full stage\n"
         "timelines as pigeon.slowlog.v1 JSONL; 0 captures everything),\n"
         "and --flightrec FILE (the in-memory flight recorder of recent\n"
         "event records, also dumped by admin:\"flightrec\", is written\n"
         "there at exit and on every metrics tick).\n";
  return 2;
}

std::optional<Language> parseLanguage(const std::string &Name) {
  if (Name == "js" || Name == "javascript")
    return Language::JavaScript;
  if (Name == "java")
    return Language::Java;
  if (Name == "py" || Name == "python")
    return Language::Python;
  if (Name == "cs" || Name == "csharp")
    return Language::CSharp;
  return std::nullopt;
}

const char *extensionFor(Language Lang) {
  switch (Lang) {
  case Language::JavaScript:
    return ".js";
  case Language::Java:
    return ".java";
  case Language::Python:
    return ".py";
  case Language::CSharp:
    return ".cs";
  }
  return "";
}

std::optional<paths::Abstraction> parseAbstraction(const std::string &Name) {
  for (paths::Abstraction A : paths::AllAbstractions)
    if (Name == paths::abstractionName(A))
      return A;
  return std::nullopt;
}

lang::ParseResult parseAs(Language Lang, const std::string &Text,
                          StringInterner &SI) {
  switch (Lang) {
  case Language::JavaScript:
    return js::parse(Text, SI);
  case Language::Java:
    return java::parse(Text, SI);
  case Language::Python:
    return py::parse(Text, SI);
  case Language::CSharp:
    return cs::parse(Text, SI);
  }
  return {};
}

/// "error: cannot <verb> <path>: <strerror>" — every file the CLI fails
/// to open reports the OS reason. A missing model path must read as an IO
/// error here, not surface three layers later as a bundle decode error.
std::string openError(const char *Verb, const std::string &Path) {
  return std::string("error: cannot ") + Verb + " " + Path + ": " +
         std::strerror(errno);
}

std::optional<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt; // errno still describes the failed open.
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  if (In.bad())
    return std::nullopt;
  return Buffer.str();
}

/// Collects source files (by extension) under the given paths.
std::vector<std::string> collectSources(const std::vector<std::string> &Roots,
                                        Language Lang) {
  namespace fs = std::filesystem;
  std::vector<std::string> Out;
  const std::string Ext = extensionFor(Lang);
  for (const std::string &Root : Roots) {
    std::error_code EC;
    if (fs::is_directory(Root, EC)) {
      for (const auto &Entry :
           fs::recursive_directory_iterator(Root, EC)) {
        if (Entry.is_regular_file() && Entry.path().extension() == Ext)
          Out.push_back(Entry.path().string());
      }
    } else {
      Out.push_back(Root);
    }
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

//===----------------------------------------------------------------------===//
// extract
//===----------------------------------------------------------------------===//

int cmdExtract(Language Lang, const paths::ExtractionConfig &Config,
               const std::string &Path) {
  auto Text = readFile(Path);
  if (!Text) {
    std::cerr << openError("read", Path) << "\n";
    return 1;
  }
  StringInterner Interner;
  std::optional<lang::ParseResult> R;
  {
    telemetry::TraceScope Phase("parse");
    R = parseAs(Lang, *Text, Interner);
  }
  if (!R->Tree) {
    std::cerr << "error: parse failed\n";
    return 1;
  }
  for (const lang::Diagnostic &D : R->Diags)
    std::cerr << Path << ":" << D.str() << "\n";

  paths::PathTable Table;
  std::vector<paths::PathContext> Contexts;
  {
    telemetry::TraceScope Phase("extract");
    Contexts = paths::extractPathContexts(*R->Tree, Config, Table);
  }
  for (const paths::PathContext &Ctx : Contexts) {
    std::cout << Interner.str(paths::endValue(*R->Tree, Ctx.Start)) << "\t"
              << Table.render(Ctx.Path, Interner) << "\t"
              << Interner.str(paths::endValue(*R->Tree, Ctx.End))
              << (Ctx.Semi ? "\t(semi)" : "") << "\n";
  }
  std::cerr << Contexts.size() << " path-contexts, " << Table.size()
            << " distinct paths\n";
  return 0;
}

//===----------------------------------------------------------------------===//
// Corpus artifact pipeline (extract --out / train / eval)
//===----------------------------------------------------------------------===//

/// Reads the source files under \p Roots into parseCorpus() inputs. The
/// project of a file is its parent directory, so corpora laid out one
/// directory per project keep their split structure.
std::vector<datagen::SourceFile>
loadSourceFiles(const std::vector<std::string> &Roots, Language Lang) {
  std::vector<datagen::SourceFile> Out;
  for (const std::string &Path : collectSources(Roots, Lang)) {
    auto Text = readFile(Path);
    if (!Text) {
      std::cerr << "warning: cannot read " << Path << ": "
                << std::strerror(errno) << ", skipped\n";
      continue;
    }
    datagen::SourceFile File;
    File.Project = std::filesystem::path(Path).parent_path().string();
    File.FileName = Path;
    File.Text = std::move(*Text);
    Out.push_back(std::move(File));
  }
  return Out;
}

/// The parse+extract front half shared by `extract --out`, direct
/// `train`, and direct `eval`: parse the sources into a corpus (sharded,
/// bit-identical at any thread count) and resolve the extracted contexts
/// into an artifact. \returns std::nullopt (with a message) when no
/// source parses.
std::optional<ContextsArtifact>
buildArtifactFromRoots(Language Lang, Task TaskKind,
                       const paths::ExtractionConfig &Extraction,
                       const std::vector<std::string> &Roots) {
  std::vector<datagen::SourceFile> Sources = loadSourceFiles(Roots, Lang);
  if (Sources.empty()) {
    std::cerr << "error: no " << extensionFor(Lang)
              << " files under the given paths\n";
    return std::nullopt;
  }
  Corpus C = parseCorpus(Sources, Lang); // Opens its own "parse" phase.
  std::cerr << "parsed " << C.Files.size() << "/" << Sources.size()
            << " files (" << C.ParseFailures << " dropped)\n";
  if (C.Files.empty()) {
    std::cerr << "error: every file failed to parse\n";
    return std::nullopt;
  }
  CrfExperimentOptions Options;
  Options.Extraction = Extraction;
  return buildContextsArtifact(C, TaskKind, Options);
}

int cmdExtractCorpus(Language Lang, Task TaskKind,
                     const paths::ExtractionConfig &Extraction,
                     const std::string &OutPath,
                     const std::vector<std::string> &Roots) {
  auto Art = buildArtifactFromRoots(Lang, TaskKind, Extraction, Roots);
  if (!Art)
    return 1;
  size_t NumContexts = 0;
  for (const FileRecord &Rec : Art->Files)
    NumContexts += Rec.Contexts.size();
  std::ofstream Out(OutPath, std::ios::binary);
  if (!Out) {
    std::cerr << openError("write", OutPath) << "\n";
    return 1;
  }
  telemetry::TraceScope Phase("save");
  saveContexts(Out, *Art);
  Out.flush();
  if (!Out) {
    std::cerr << openError("write", OutPath) << "\n";
    return 1;
  }
  std::cerr << "wrote " << NumContexts << " contexts over "
            << Art->Files.size() << " files, " << Art->Table.size()
            << " distinct paths to " << OutPath << "\n";
  return 0;
}

std::unique_ptr<ContextsArtifact>
loadContextsFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::cerr << openError("read", Path) << "\n";
    return nullptr;
  }
  telemetry::TraceScope Phase("load");
  auto Art = loadContexts(In);
  if (!Art)
    std::cerr << "error: " << Path
              << " is not a pigeon.contexts.v1 artifact\n";
  return Art;
}

//===----------------------------------------------------------------------===//
// model loading (shared by eval / predict / serve / migrate-bundle)
//===----------------------------------------------------------------------===//

/// Loads a bundle of either on-disk format — v3 maps in place, anything
/// else takes the v2 stream loader — printing the loader's diagnostic
/// (with its byte offset) on failure.
std::unique_ptr<ModelBundle> loadBundleFile(const std::string &ModelPath,
                                            bool VerifyChecksum = false) {
  LoadDiag Diag;
  auto Bundle = loadModelFile(ModelPath, &Diag, VerifyChecksum);
  if (!Bundle)
    std::cerr << "error: " << ModelPath << ": "
              << (Diag.Error.empty() ? "not a PIGEON model" : Diag.Error)
              << "\n";
  return Bundle;
}

//===----------------------------------------------------------------------===//
// train
//===----------------------------------------------------------------------===//

/// Trains and saves a bundle from an artifact (loaded or just built).
/// Both `train` routes converge here, which is what makes them produce
/// byte-identical bundles for the same corpus.
int trainFromArtifact(ContextsArtifact &&Art, const std::string &OutPath,
                      int BundleFormat) {
  ModelBundle Bundle;
  Bundle.Lang = Art.Lang;
  Bundle.TaskKind = Art.TaskKind;
  Bundle.Extraction = Art.Extraction;
  Bundle.Interner = std::move(Art.Interner);
  Bundle.Table = std::move(Art.Table);

  crf::ElementSelector Selector = selectorFor(Bundle.TaskKind);
  std::vector<crf::CrfGraph> Graphs;
  Graphs.reserve(Art.Files.size());
  {
    telemetry::TraceScope Phase("assemble");
    for (const FileRecord &Rec : Art.Files) {
      crf::CrfGraph G = buildGraphFromRecord(Rec, Selector);
      if (Art.TriContexts)
        addTriFactorsFromRecord(G, Rec, Selector, *Bundle.Interner);
      Graphs.push_back(std::move(G));
    }
  }
  {
    telemetry::TraceScope Phase("train");
    Bundle.Model.train(Graphs);
  }
  std::cerr << "trained: " << Bundle.Model.numFeatures() << " features, "
            << Bundle.Table.size() << " distinct paths\n";

  std::ofstream Out(OutPath, std::ios::binary);
  if (!Out) {
    std::cerr << openError("write", OutPath) << "\n";
    return 1;
  }
  telemetry::TraceScope Phase("save");
  if (BundleFormat == 3)
    saveModelV3(Out, Bundle);
  else
    saveModel(Out, Bundle);
  Out.flush();
  if (!Out) {
    std::cerr << openError("write", OutPath) << "\n";
    return 1;
  }
  std::cerr << "saved model to " << OutPath << "\n";
  return 0;
}

int cmdTrain(Language Lang, Task TaskKind, const std::string &OutPath,
             const std::vector<std::string> &Roots, int BundleFormat) {
  auto Art =
      buildArtifactFromRoots(Lang, TaskKind, tunedExtraction(Lang, TaskKind),
                             Roots);
  if (!Art)
    return 1;
  return trainFromArtifact(std::move(*Art), OutPath, BundleFormat);
}

int cmdTrainFromContexts(const std::string &ContextsPath,
                         const std::string &OutPath, int BundleFormat) {
  auto Art = loadContextsFile(ContextsPath);
  if (!Art)
    return 1;
  if (Art->TaskKind == Task::FullTypes) {
    std::cerr << "error: contexts artifact is for the types task, which "
                 "trains through `pigeon explain`/experiments only\n";
    return 1;
  }
  return trainFromArtifact(std::move(*Art), OutPath, BundleFormat);
}

//===----------------------------------------------------------------------===//
// eval
//===----------------------------------------------------------------------===//

int cmdEval(const std::string &ModelPath, const std::string &ContextsPath,
            const std::optional<Language> &Lang,
            const std::vector<std::string> &Roots) {
  std::unique_ptr<ModelBundle> Bundle;
  {
    telemetry::TraceScope Phase("load");
    Bundle = loadBundleFile(ModelPath);
  }
  if (!Bundle)
    return 1;

  std::unique_ptr<ContextsArtifact> Art;
  if (!ContextsPath.empty()) {
    Art = loadContextsFile(ContextsPath);
    if (!Art)
      return 1;
    if (Art->Lang != Bundle->Lang || Art->TaskKind != Bundle->TaskKind) {
      std::cerr << "error: contexts artifact language/task does not match "
                   "the model\n";
      return 1;
    }
  } else {
    // Direct route: extract with the model's own configuration so the
    // contexts match what it was trained on.
    auto Built = buildArtifactFromRoots(*Lang, Bundle->TaskKind,
                                        Bundle->Extraction, Roots);
    if (!Built)
      return 1;
    Art = std::make_unique<ContextsArtifact>(std::move(*Built));
  }

  // The artifact speaks its own symbol space; rebase it onto the
  // bundle's interner and path table before scoring.
  if (!rebaseArtifact(*Art, *Bundle->Interner, Bundle->Table)) {
    std::cerr << "error: corrupt contexts artifact (out-of-range symbols "
                 "or paths)\n";
    return 1;
  }

  EvalStats Stats = evalArtifact(*Bundle, *Art);
  if (Stats.Total == 0) {
    // A 0-of-0 run is not a score. Presenting it as accuracy 0.0 with
    // exit 0 poisoned the bench trajectory once; now it is an explicit
    // failure that never sets the accuracy gauge.
    std::printf("accuracy n/a (n=0)\n");
    std::cerr << "error: no elements to evaluate — the corpus has no "
              << taskName(Art->TaskKind)
              << " targets (empty artifact or all-known files)\n";
    return 1;
  }
  double Accuracy = Stats.accuracy();
  telemetry::MetricsRegistry::global()
      .gauge("eval.cli.accuracy")
      .set(Accuracy);
  std::printf("accuracy %.6f (%zu/%zu predictions)\n", Accuracy,
              Stats.Correct, Stats.Total);
  return 0;
}

//===----------------------------------------------------------------------===//
// predict
//===----------------------------------------------------------------------===//

int cmdPredict(const std::string &ModelPath, const std::string &Path) {
  std::unique_ptr<ModelBundle> Bundle;
  {
    telemetry::TraceScope Phase("load");
    Bundle = loadBundleFile(ModelPath);
  }
  if (!Bundle)
    return 1;
  auto Text = readFile(Path);
  if (!Text) {
    std::cerr << openError("read", Path) << "\n";
    return 1;
  }
  std::optional<lang::ParseResult> R;
  {
    telemetry::TraceScope Phase("parse");
    R = parseAs(Bundle->Lang, *Text, *Bundle->Interner);
  }
  if (!R->Tree) {
    std::cerr << "error: parse failed\n";
    return 1;
  }
  telemetry::TraceScope Phase("predict");
  auto Contexts = paths::extractPathContexts(*R->Tree, Bundle->Extraction,
                                             Bundle->Table);
  crf::CrfGraph G =
      crf::buildGraph(*R->Tree, Contexts, selectorFor(Bundle->TaskKind));
  std::vector<Symbol> Pred = Bundle->Model.predict(G);

  TablePrinter Out("predictions for " + Path);
  Out.setHeader({"Element", "Kind", "Prediction", "Top candidates"});
  for (uint32_t N : G.Unknowns) {
    const crf::GraphNode &Node = G.Nodes[N];
    auto Top = Bundle->Model.topK(G, N, Pred, 3);
    std::string Candidates;
    for (const auto &[Label, Score] : Top) {
      if (!Candidates.empty())
        Candidates += ", ";
      Candidates += Bundle->Interner->str(Label);
    }
    std::string Kind =
        Node.Element != InvalidElement
            ? elementKindName(R->Tree->element(Node.Element).Kind)
            : "?";
    Out.addRow({std::string(Bundle->Interner->str(Node.Gold)), Kind,
                std::string(Pred[N].isValid() ? Bundle->Interner->str(Pred[N])
                                              : std::string_view("?")),
                Candidates});
  }
  Out.print(std::cout);
  return 0;
}

//===----------------------------------------------------------------------===//
// migrate-bundle
//===----------------------------------------------------------------------===//

/// Deterministic per-element top-3 signature of \p Bundle's predictions
/// on \p Text: one `gold: label=score,...` line per unknown element,
/// scores printed at full double precision. Two bundles that predict
/// byte-identically produce byte-identical signatures.
std::string topKSignature(ModelBundle &Bundle, const std::string &Text) {
  auto R = parseAs(Bundle.Lang, Text, *Bundle.Interner);
  if (!R.Tree)
    return "<parse-failed>";
  auto Contexts =
      paths::extractPathContexts(*R.Tree, Bundle.Extraction, Bundle.Table);
  crf::CrfGraph G =
      crf::buildGraph(*R.Tree, Contexts, selectorFor(Bundle.TaskKind));
  std::vector<Symbol> Pred = Bundle.Model.predict(G);
  std::string Sig;
  char Buf[64];
  for (uint32_t N : G.Unknowns) {
    Sig += std::string(Bundle.Interner->str(G.Nodes[N].Gold));
    Sig += ": ";
    for (const auto &[Label, Score] : Bundle.Model.topK(G, N, Pred, 3)) {
      std::snprintf(Buf, sizeof(Buf), "%.17g", Score);
      Sig += std::string(Bundle.Interner->str(Label));
      Sig += '=';
      Sig += Buf;
      Sig += ',';
    }
    Sig += '\n';
  }
  return Sig;
}

int cmdMigrate(const std::string &InPath, const std::string &OutPath,
               int BundleFormat, bool Check) {
  std::unique_ptr<ModelBundle> Bundle =
      loadBundleFile(InPath, /*VerifyChecksum=*/true);
  if (!Bundle)
    return 1;
  bool InWasMapped = Bundle->Mapping != nullptr;
  {
    std::ofstream Out(OutPath, std::ios::binary);
    if (!Out) {
      std::cerr << openError("write", OutPath) << "\n";
      return 1;
    }
    telemetry::TraceScope Phase("save");
    if (BundleFormat == 3)
      saveModelV3(Out, *Bundle);
    else
      saveModel(Out, *Bundle);
    Out.flush();
    if (!Out) {
      std::cerr << openError("write", OutPath) << "\n";
      return 1;
    }
  }
  std::cerr << "migrated " << InPath << " (v" << (InWasMapped ? 3 : 2)
            << ") -> " << OutPath << " (v" << BundleFormat << ")\n";
  if (!Check)
    return 0;

  // --check: reload both files fresh and diff per-element top-3
  // predictions (labels and scores) over a synthetic corpus in the
  // bundle's language. Each bundle parses its own copy so novel interned
  // ids cannot leak between the two.
  telemetry::TraceScope Phase("check");
  auto Old = loadBundleFile(InPath);
  auto New = loadBundleFile(OutPath, /*VerifyChecksum=*/true);
  if (!Old || !New)
    return 1;
  datagen::CorpusSpec Spec = datagen::defaultSpec(Old->Lang, /*Seed=*/2018);
  Spec.NumProjects = 4;
  std::vector<datagen::SourceFile> Files = datagen::generateCorpus(Spec);
  size_t Mismatches = 0, Checked = 0;
  for (const datagen::SourceFile &File : Files) {
    std::string A = topKSignature(*Old, File.Text);
    std::string B = topKSignature(*New, File.Text);
    ++Checked;
    if (A != B) {
      ++Mismatches;
      if (Mismatches <= 3)
        std::cerr << "check: " << File.FileName
                  << ": predictions differ\n  old: " << A << "  new: " << B;
    }
  }
  if (Mismatches) {
    std::cerr << "check FAILED: " << Mismatches << "/" << Checked
              << " files differ between " << InPath << " and " << OutPath
              << "\n";
    return 1;
  }
  std::cerr << "check ok: top-3 predictions identical on " << Checked
            << " files\n";
  return 0;
}

//===----------------------------------------------------------------------===//
// serve
//===----------------------------------------------------------------------===//

/// The --metrics/--prom/--profile destinations, stashed as globals so
/// both the fatal-path flush and the serve-time periodic flusher reach
/// them. Declared here because cmdServe's flusher thread uses them.
std::string DiagMetricsPath;
std::string DiagPromPath;
std::string DiagProfilePath;
std::string DiagFlightRecPath;

/// Set by SIGTERM/SIGINT; the serve loops poll it every 200 ms and wind
/// down cleanly — drain in-flight requests, flush telemetry — instead of
/// dying mid-batch.
std::atomic<bool> ServeStop{false};

void onServeSignal(int) { ServeStop.store(true, std::memory_order_relaxed); }

int cmdServe(const std::string &ModelPath, const std::string &SocketPath,
             const std::string &TcpHostPort, bool Stdio,
             serve::ServeConfig Config, double FlushInterval) {
  std::unique_ptr<ModelBundle> Bundle;
  uint64_t RssBeforeKb = telemetry::currentRssKb();
  double LoadSeconds = 0;
  {
    telemetry::TraceScope Phase("load");
    Bundle = loadBundleFile(ModelPath);
    LoadSeconds = Phase.seconds();
  }
  if (!Bundle)
    return 1;
  // Load cost and residency: a v3 bundle is served from the mapping (its
  // pages are file-backed and shared across processes), so the heap RSS
  // delta stays near zero; a v2 bundle is deserialized onto the heap.
  uint64_t RssAfterKb = telemetry::currentRssKb();
  uint64_t MappedKb = Bundle->Mapping ? Bundle->Mapping->size() / 1024 : 0;
  auto &Reg = telemetry::MetricsRegistry::global();
  Reg.gauge("model.load.seconds").set(LoadSeconds);
  Reg.gauge("model.load.rss_delta.kb")
      .set(RssAfterKb > RssBeforeKb
               ? static_cast<double>(RssAfterKb - RssBeforeKb)
               : 0.0);
  Reg.gauge("model.load.mapped.kb").set(static_cast<double>(MappedKb));

  std::signal(SIGTERM, onServeSignal);
  std::signal(SIGINT, onServeSignal);
  // A client hanging up mid-write must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);

  serve::Service Service(std::move(Bundle), Config);
  std::cerr << "pigeon serve: " << ModelPath << " ("
            << lang::languageName(Service.bundle().Lang) << ", "
            << taskName(Service.bundle().TaskKind) << ", "
            << Service.bundle().Model.numFeatures() << " features), "
            << (Service.bundle().Mapping
                    ? "mmap-resident " + std::to_string(MappedKb) + " KiB"
                    : "heap-resident")
            << ", " << Service.workers() << " worker"
            << (Service.workers() == 1 ? "" : "s") << ", "
            << (Stdio ? "stdio"
                      : !TcpHostPort.empty() ? "tcp " + TcpHostPort
                                             : "socket " + SocketPath)
            << "\n";

  // The resident server always samples phase stacks so admin:"profile"
  // has data; batch subcommands only sample under --profile.
  telemetry::PhaseProfiler::global().start();

  // Periodic telemetry flush: a resident process must not hold its
  // observability hostage to a clean exit. Each tick atomically rewrites
  // the --metrics and --prom files and syncs the --trace stream.
  std::mutex FlushMutex;
  std::condition_variable FlushCV;
  bool FlushStop = false;
  std::thread Flusher;
  bool WantFlusher = FlushInterval > 0 &&
                     (!DiagMetricsPath.empty() || !DiagPromPath.empty() ||
                      !DiagFlightRecPath.empty() ||
                      serve::SlowLog::global().enabled() ||
                      telemetry::EventLog::global().enabled());
  if (WantFlusher)
    Flusher = std::thread([&] {
      std::unique_lock<std::mutex> L(FlushMutex);
      auto Tick = std::chrono::duration<double>(FlushInterval);
      while (!FlushCV.wait_for(L, Tick, [&] { return FlushStop; })) {
        auto &Reg = telemetry::MetricsRegistry::global();
        if (!DiagMetricsPath.empty())
          telemetry::writeFileAtomic(DiagMetricsPath, Reg.jsonSnapshot());
        if (!DiagPromPath.empty())
          telemetry::writeFileAtomic(DiagPromPath,
                                     Reg.prometheusSnapshot());
        telemetry::EventLog::global().flush();
        serve::SlowLog::global().flush();
        if (!DiagFlightRecPath.empty())
          telemetry::EventLog::global().dumpRing(DiagFlightRecPath);
      }
    });

  int RC;
  {
    telemetry::TraceScope Phase("serve");
    RC = Stdio ? serve::serveFdLoop(Service, /*InFd=*/0, /*OutFd=*/1,
                                    ServeStop)
         : !TcpHostPort.empty()
             ? serve::serveTcp(Service, TcpHostPort, ServeStop)
             : serve::serveSocket(Service, SocketPath, ServeStop);
    Service.shutdown();
  }
  if (Flusher.joinable()) {
    {
      std::lock_guard<std::mutex> L(FlushMutex);
      FlushStop = true;
    }
    FlushCV.notify_all();
    Flusher.join();
  }
  return RC;
}

//===----------------------------------------------------------------------===//
// synth
//===----------------------------------------------------------------------===//

int cmdSynth(Language Lang, const std::string &OutDir, int Projects,
             uint64_t Seed) {
  namespace fs = std::filesystem;
  std::error_code EC;
  fs::create_directories(OutDir, EC);
  if (EC) {
    std::cerr << "error: cannot create " << OutDir << "\n";
    return 1;
  }
  datagen::CorpusSpec Spec = datagen::defaultSpec(Lang, Seed);
  Spec.NumProjects = Projects;
  std::vector<datagen::SourceFile> Files;
  {
    telemetry::TraceScope Phase("datagen");
    Files = datagen::generateCorpus(Spec);
  }
  telemetry::TraceScope Phase("write");
  size_t Count = 0;
  for (const datagen::SourceFile &File : Files) {
    const std::string FilePath =
        OutDir + "/" + File.FileName + extensionFor(Lang);
    std::ofstream Out(FilePath, std::ios::binary);
    if (!Out) {
      std::cerr << openError("write", FilePath) << "\n";
      return 1;
    }
    Out << File.Text;
    Out.flush();
    if (!Out) {
      std::cerr << openError("write", FilePath) << "\n";
      return 1;
    }
    ++Count;
  }
  std::cerr << "wrote " << Count << " files to " << OutDir << "\n";
  return 0;
}

//===----------------------------------------------------------------------===//
// demo
//===----------------------------------------------------------------------===//

int cmdDemo(Language Lang) {
  datagen::CorpusSpec Spec = datagen::defaultSpec(Lang, 2018);
  Spec.NumProjects = 24;
  std::vector<datagen::SourceFile> Sources;
  {
    telemetry::TraceScope Phase("datagen");
    Sources = datagen::generateCorpus(Spec);
  }
  std::cerr << "worker threads: " << parallel::resolveThreads(0) << "\n";
  Corpus C = parseCorpus(Sources, Lang); // Opens its own "parse" phase.
  CrfExperimentOptions Options;
  Options.Extraction = tunedExtraction(Lang, Task::VariableNames);
  TrainedNameModel Model(C, Task::VariableNames, Options);

  datagen::CorpusSpec Fresh = datagen::defaultSpec(Lang, 4242);
  Fresh.NumProjects = 1;
  Fresh.FilesPerProject = 1;
  auto FreshSources = datagen::generateCorpus(Fresh);
  std::string Stripped =
      datagen::render(FreshSources.front().Sketch, Lang, /*Strip=*/true);
  std::cout << "== stripped ==\n" << Stripped;
  lang::ParseResult R = parseAs(Lang, Stripped, *C.Interner);
  if (!R.Tree) {
    std::cerr << "demo parse failed\n";
    return 1;
  }
  std::map<ast::ElementId, Symbol> Pred;
  {
    telemetry::TraceScope Phase("eval");
    Pred = Model.predict(*R.Tree);
  }
  std::cout << "== predicted names ==\n";
  for (const auto &[E, Name] : Pred)
    std::cout << "  " << C.Interner->str(R.Tree->element(E).Name) << " -> "
              << (Name.isValid() ? C.Interner->str(Name) : "?") << "\n";
  std::cout << "== original ==\n" << FreshSources.front().Text;
  std::cout << "\n";
  telemetry::MetricsRegistry::global().printTraceTable(std::cout);
  return 0;
}

//===----------------------------------------------------------------------===//
// explain
//===----------------------------------------------------------------------===//

std::string fixed4(double X) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.4f", X);
  return Buf;
}

int cmdExplain(Language Lang, const std::string &TaskName, int TopK,
               int Projects, uint64_t Seed) {
  Task TaskKind;
  if (TaskName == "vars")
    TaskKind = Task::VariableNames;
  else if (TaskName == "methods")
    TaskKind = Task::MethodNames;
  else if (TaskName == "types")
    TaskKind = Task::FullTypes;
  else
    return usage();

  datagen::CorpusSpec Spec = datagen::defaultSpec(Lang, Seed);
  Spec.NumProjects = Projects;
  std::vector<datagen::SourceFile> Sources;
  {
    telemetry::TraceScope Phase("datagen");
    Sources = datagen::generateCorpus(Spec);
  }
  Corpus C = parseCorpus(Sources, Lang);

  CrfExperimentOptions Options;
  Options.Extraction = tunedExtraction(Lang, TaskKind);
  Options.Seed = Seed;
  std::vector<ExplainedPrediction> Rows =
      explainCrfPredictions(C, TaskKind, Options, TopK, /*MaxNodes=*/8);
  if (Rows.empty()) {
    std::cerr << "error: nothing to explain (no test-split predictions)\n";
    return 1;
  }

  size_t Index = 0;
  for (const ExplainedPrediction &P : Rows) {
    ++Index;
    TablePrinter Out("#" + std::to_string(Index) + "  " + P.Predicted +
                     (P.Correct ? "  (== gold)" : "  (gold: " + P.Gold + ")") +
                     "  score " + fixed4(P.Score) + " = bias " +
                     fixed4(P.Bias) + " + paths");
    Out.setHeader({"Path", "Neighbor", "Factor", "Score", "Weight", "Vote"});
    for (const ExplainedPrediction::PathLine &L : P.Paths)
      Out.addRow({L.Path, L.Unary ? "-" : L.Neighbor,
                  L.Unary ? "unary" : "pairwise", fixed4(L.Score),
                  fixed4(L.Weight), fixed4(L.Vote)});
    Out.print(std::cout);
  }
  size_t Correct = 0;
  for (const ExplainedPrediction &P : Rows)
    Correct += P.Correct;
  std::cerr << "explained " << Rows.size() << " predictions (" << Correct
            << " correct); each score decomposes exactly into bias + per-path"
               " contributions\n";
  return 0;
}

//===----------------------------------------------------------------------===//
// Diagnostics flushing
//===----------------------------------------------------------------------===//

/// Best-effort flush of the --metrics snapshot, the --prom exposition,
/// the --profile folded stacks, the --slow-log capture, the --flightrec
/// dump and the --trace event stream. Safe to call more than once: every
/// write is a whole-file atomic rewrite and EventLog::close() /
/// SlowLog::close() are idempotent. \returns false when a requested
/// metrics snapshot could not be written.
bool flushDiagnostics() {
  bool Ok = true;
  auto &Reg = telemetry::MetricsRegistry::global();
  if (!DiagMetricsPath.empty()) {
    if (telemetry::writeFileAtomic(DiagMetricsPath, Reg.jsonSnapshot()))
      std::cerr << "metrics written to " << DiagMetricsPath << "\n";
    else {
      std::cerr << "error: cannot write metrics to " << DiagMetricsPath
                << "\n";
      Ok = false;
    }
  }
  if (!DiagPromPath.empty() &&
      !telemetry::writeFileAtomic(DiagPromPath, Reg.prometheusSnapshot()))
    std::cerr << "error: cannot write Prometheus exposition to "
              << DiagPromPath << "\n";
  if (!DiagProfilePath.empty()) {
    auto &Prof = telemetry::PhaseProfiler::global();
    Prof.stop(); // Quiesce the sampler before reading the final counts.
    if (Prof.writeFolded(DiagProfilePath))
      std::cerr << "profile written to " << DiagProfilePath << "\n";
    else
      std::cerr << "error: cannot write profile to " << DiagProfilePath
                << "\n";
  }
  if (serve::SlowLog::global().enabled() &&
      !serve::SlowLog::global().flush())
    std::cerr << "error: cannot write the slow-request log\n";
  serve::SlowLog::global().close();
  // Dump the flight recorder before closing the event stream: a fatal
  // exit is exactly when the last-N-records window matters.
  if (!DiagFlightRecPath.empty() &&
      telemetry::EventLog::global().dumpRing(DiagFlightRecPath))
    std::cerr << "flight recorder dumped to " << DiagFlightRecPath << "\n";
  telemetry::EventLog::global().close();
  return Ok;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  if (Args.empty())
    return usage();
  std::string Command = Args[0];

  // Shared flag parsing.
  std::optional<Language> Lang;
  std::string ModelPath, OutPath, MetricsPath, TracePath, ContextsPath;
  std::string SocketPath, TcpHostPort, PromPath, ProfilePath;
  std::string SlowLogPath, FlightRecPath, InPath;
  bool Stdio = false;
  bool Check = false;
  int BundleFormat = 3;
  double MetricsInterval = 10.0;
  double TraceMaxMb = 0;
  serve::ServeConfig ServeOptions;
  std::string TaskName = "vars";
  int Projects = 24;
  int TopK = 5;
  uint64_t Seed = 2018;
  paths::ExtractionConfig Extraction;
  bool ExtractionFlagsSeen = false;
  std::vector<std::string> Positional;
  for (size_t I = 1; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    auto Value = [&]() -> std::string {
      return ++I < Args.size() ? Args[I] : "";
    };
    if (Arg == "--lang") {
      Lang = parseLanguage(Value());
      if (!Lang)
        return usage();
    } else if (Arg == "--model") {
      ModelPath = Value();
    } else if (Arg == "--in") {
      InPath = Value();
      if (InPath.empty()) {
        std::cerr << "error: --in requires a file path\n";
        return 2;
      }
    } else if (Arg == "--check") {
      Check = true;
    } else if (Arg == "--bundle-format") {
      std::string V = Value();
      if (V != "2" && V != "3") {
        std::cerr << "error: --bundle-format wants 2 (stream) or 3 (mmap)\n";
        return 2;
      }
      BundleFormat = V == "2" ? 2 : 3;
    } else if (Arg == "--out") {
      OutPath = Value();
    } else if (Arg == "--from-contexts") {
      ContextsPath = Value();
      if (ContextsPath.empty()) {
        std::cerr << "error: --from-contexts requires a file path\n";
        return 2;
      }
    } else if (Arg == "--metrics") {
      MetricsPath = Value();
      if (MetricsPath.empty()) {
        std::cerr << "error: --metrics requires a file path\n";
        return 2;
      }
    } else if (Arg == "--trace") {
      TracePath = Value();
      if (TracePath.empty()) {
        std::cerr << "error: --trace requires a file path\n";
        return 2;
      }
    } else if (Arg == "--top") {
      TopK = std::atoi(Value().c_str());
      if (TopK <= 0) {
        std::cerr << "error: --top wants a positive count\n";
        return 2;
      }
    } else if (Arg == "--socket") {
      SocketPath = Value();
      if (SocketPath.empty()) {
        std::cerr << "error: --socket requires a path\n";
        return 2;
      }
    } else if (Arg == "--tcp") {
      TcpHostPort = Value();
      if (TcpHostPort.empty()) {
        std::cerr << "error: --tcp requires HOST:PORT (\":0\" binds an "
                     "ephemeral port)\n";
        return 2;
      }
    } else if (Arg == "--serve-workers") {
      long N = std::atol(Value().c_str());
      if (N < 0) {
        std::cerr << "error: --serve-workers wants a non-negative count "
                     "(0 = one per core)\n";
        return 2;
      }
      ServeOptions.Workers = static_cast<size_t>(N);
    } else if (Arg == "--stdio") {
      Stdio = true;
    } else if (Arg == "--prom") {
      PromPath = Value();
      if (PromPath.empty()) {
        std::cerr << "error: --prom requires a file path\n";
        return 2;
      }
    } else if (Arg == "--profile") {
      ProfilePath = Value();
      if (ProfilePath.empty()) {
        std::cerr << "error: --profile requires a file path\n";
        return 2;
      }
    } else if (Arg == "--metrics-interval") {
      MetricsInterval = std::atof(Value().c_str());
      if (MetricsInterval <= 0) {
        std::cerr << "error: --metrics-interval wants a positive number "
                     "of seconds\n";
        return 2;
      }
    } else if (Arg == "--trace-max-mb") {
      TraceMaxMb = std::atof(Value().c_str());
      if (TraceMaxMb <= 0) {
        std::cerr << "error: --trace-max-mb wants a positive size\n";
        return 2;
      }
    } else if (Arg == "--slow-log") {
      SlowLogPath = Value();
      if (SlowLogPath.empty()) {
        std::cerr << "error: --slow-log requires a file path\n";
        return 2;
      }
    } else if (Arg == "--slow-trace-ms") {
      std::string V = Value();
      ServeOptions.SlowTraceMs = std::atof(V.c_str());
      if (V.empty() || ServeOptions.SlowTraceMs < 0) {
        std::cerr << "error: --slow-trace-ms wants a non-negative "
                     "threshold (0 captures every request)\n";
        return 2;
      }
    } else if (Arg == "--flightrec") {
      FlightRecPath = Value();
      if (FlightRecPath.empty()) {
        std::cerr << "error: --flightrec requires a file path\n";
        return 2;
      }
    } else if (Arg == "--slo-p99-ms") {
      ServeOptions.SloP99Ms = std::atof(Value().c_str());
      if (ServeOptions.SloP99Ms <= 0) {
        std::cerr << "error: --slo-p99-ms wants a positive target\n";
        return 2;
      }
    } else if (Arg == "--batch") {
      long N = std::atol(Value().c_str());
      if (N <= 0) {
        std::cerr << "error: --batch wants a positive count\n";
        return 2;
      }
      ServeOptions.MaxBatch = static_cast<size_t>(N);
    } else if (Arg == "--queue") {
      long N = std::atol(Value().c_str());
      if (N <= 0) {
        std::cerr << "error: --queue wants a positive count\n";
        return 2;
      }
      ServeOptions.QueueCapacity = static_cast<size_t>(N);
    } else if (Arg == "--task") {
      TaskName = Value();
    } else if (Arg == "--length") {
      Extraction.MaxLength = std::atoi(Value().c_str());
      ExtractionFlagsSeen = true;
    } else if (Arg == "--width") {
      Extraction.MaxWidth = std::atoi(Value().c_str());
      ExtractionFlagsSeen = true;
    } else if (Arg == "--threads") {
      long N = std::atol(Value().c_str());
      if (N < 0) {
        std::cerr << "error: --threads wants a non-negative count\n";
        return 2;
      }
      parallel::setDefaultThreads(static_cast<size_t>(N));
    } else if (Arg == "--projects") {
      Projects = std::atoi(Value().c_str());
    } else if (Arg == "--seed") {
      Seed = static_cast<uint64_t>(std::atoll(Value().c_str()));
    } else if (Arg == "--abst") {
      auto A = parseAbstraction(Value());
      if (!A)
        return usage();
      Extraction.Abst = *A;
      ExtractionFlagsSeen = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      Positional.push_back(Arg);
    }
  }
  // --metrics/--trace win; PIGEON_METRICS/PIGEON_TRACE are the fallbacks
  // so wrappers can turn instrumentation on without touching command
  // lines.
  if (MetricsPath.empty()) {
    if (const char *Env = std::getenv("PIGEON_METRICS"))
      MetricsPath = Env;
  }
  if (TracePath.empty()) {
    if (const char *Env = std::getenv("PIGEON_TRACE"))
      TracePath = Env;
  }
  DiagMetricsPath = MetricsPath;
  DiagPromPath = PromPath;
  DiagProfilePath = ProfilePath;
  DiagFlightRecPath = FlightRecPath;
  if (TraceMaxMb > 0)
    telemetry::EventLog::global().setRotation(
        static_cast<uint64_t>(TraceMaxMb * 1024 * 1024));
  if (!TracePath.empty() &&
      !telemetry::EventLog::global().open(TracePath)) {
    std::cerr << "error: cannot open trace file " << TracePath << "\n";
    return 2;
  }
  if (!SlowLogPath.empty())
    serve::SlowLog::global().open(SlowLogPath);
  if (!ProfilePath.empty())
    telemetry::PhaseProfiler::global().start();

  // Uncaught exceptions (including ones escaping noexcept contexts) still
  // flush whatever telemetry exists — a crashing run is exactly the one
  // whose trace matters.
  std::set_terminate([] {
    std::fputs("pigeon: terminating on unhandled exception\n", stderr);
    flushDiagnostics();
    std::abort();
  });

  std::optional<int> RC;
  try {
    auto ParseTask = [&]() -> std::optional<Task> {
      if (TaskName == "vars")
        return Task::VariableNames;
      if (TaskName == "methods")
        return Task::MethodNames;
      return std::nullopt;
    };
    if (Command == "extract") {
      if (!OutPath.empty()) {
        // Corpus mode: write a pigeon.contexts.v1 artifact.
        if (!Lang || Positional.empty())
          return usage();
        auto TaskKind = ParseTask();
        if (!TaskKind)
          return usage();
        RC = cmdExtractCorpus(*Lang, *TaskKind,
                              ExtractionFlagsSeen
                                  ? Extraction
                                  : tunedExtraction(*Lang, *TaskKind),
                              OutPath, Positional);
      } else {
        if (!Lang || Positional.size() != 1)
          return usage();
        RC = cmdExtract(*Lang, Extraction, Positional[0]);
      }
    } else if (Command == "train") {
      if (OutPath.empty())
        return usage();
      if (!ContextsPath.empty()) {
        // Language, task, and extraction config come from the artifact.
        if (!Positional.empty())
          return usage();
        RC = cmdTrainFromContexts(ContextsPath, OutPath, BundleFormat);
      } else {
        if (!Lang || Positional.empty())
          return usage();
        auto TaskKind = ParseTask();
        if (!TaskKind)
          return usage();
        RC = cmdTrain(*Lang, *TaskKind, OutPath, Positional, BundleFormat);
      }
    } else if (Command == "eval") {
      if (ModelPath.empty())
        return usage();
      if (ContextsPath.empty() && (!Lang || Positional.empty()))
        return usage();
      if (!ContextsPath.empty() && !Positional.empty())
        return usage();
      RC = cmdEval(ModelPath, ContextsPath, Lang, Positional);
    } else if (Command == "predict") {
      if (ModelPath.empty() || Positional.size() != 1)
        return usage();
      RC = cmdPredict(ModelPath, Positional[0]);
    } else if (Command == "migrate-bundle") {
      if (InPath.empty() || OutPath.empty() || !Positional.empty())
        return usage();
      RC = cmdMigrate(InPath, OutPath, BundleFormat, Check);
    } else if (Command == "serve") {
      int Transports = (Stdio ? 1 : 0) + (!SocketPath.empty() ? 1 : 0) +
                       (!TcpHostPort.empty() ? 1 : 0);
      if (ModelPath.empty() || !Positional.empty() || Transports != 1)
        return usage();
      RC = cmdServe(ModelPath, SocketPath, TcpHostPort, Stdio,
                    ServeOptions, MetricsInterval);
    } else if (Command == "demo") {
      if (!Lang)
        return usage();
      RC = cmdDemo(*Lang);
    } else if (Command == "synth") {
      if (!Lang || OutPath.empty() || Projects <= 0)
        return usage();
      RC = cmdSynth(*Lang, OutPath, Projects, Seed);
    } else if (Command == "explain") {
      if (!Lang || Projects <= 0)
        return usage();
      RC = cmdExplain(*Lang, TaskName, TopK, Projects, Seed);
    }
  } catch (const std::exception &E) {
    std::cerr << "pigeon: fatal: " << E.what() << "\n";
    flushDiagnostics();
    return 1;
  }
  if (!RC) {
    flushDiagnostics();
    return usage();
  }

  if (telemetry::EventLog::global().enabled())
    telemetry::EventLog::global().record(
        "exit", {{"code", std::to_string(*RC)}});
  if (!flushDiagnostics() && *RC == 0)
    RC = 1;
  return *RC;
}
