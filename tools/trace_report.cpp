//===- trace_report.cpp - Fold serve traces into a latency report ----------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `trace_report [--top K] FILE...` — folds `pigeon serve` observability
/// artifacts into a latency-decomposition report: per-stage p50/p99
/// across every request found, plus the top-K slowest requests with
/// their full stage timelines.
///
/// Accepted inputs, freely mixed (the line schema is auto-detected):
///  * pigeon.events.v1 streams (`pigeon serve --trace FILE` output and
///    its rotated `FILE.1` segment, or an `admin:"flightrec"` dump) —
///    `serve.request` records are folded, everything else is skipped;
///  * pigeon.slowlog.v1 captures (`--slow-log FILE`).
///
/// Exit codes: 0 when at least one request sample was found, 1 when the
/// inputs held none (CI uses this to assert a non-empty decomposition),
/// 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "serve/SlowLog.h"
#include "support/Json.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace pigeon;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: trace_report [--top K] FILE...\n"
               "  FILE: a pigeon.events.v1 stream (--trace / flightrec dump)\n"
               "        and/or a pigeon.slowlog.v1 capture (--slow-log)\n"
               "  --top K  timelines to list for the slowest requests "
               "(default 5)\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  size_t TopK = 5;
  std::vector<std::string> Files;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--top") {
      if (++I >= argc)
        return usage();
      long V = std::strtol(argv[I], nullptr, 10);
      if (V < 0)
        return usage();
      TopK = static_cast<size_t>(V);
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag %s\n", Arg.c_str());
      return usage();
    } else {
      Files.push_back(std::move(Arg));
    }
  }
  if (Files.empty())
    return usage();

  std::vector<serve::RequestSample> Samples;
  size_t LinesRead = 0, LinesSkipped = 0;
  for (const std::string &File : Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", File.c_str());
      return 2;
    }
    std::string Line;
    while (std::getline(In, Line)) {
      if (Line.empty())
        continue;
      ++LinesRead;
      std::optional<json::Value> Doc = json::parse(Line);
      if (!Doc) {
        ++LinesSkipped; // Torn tail line of a live stream: tolerate.
        continue;
      }
      if (std::optional<serve::RequestSample> S =
              serve::parseRequestSample(*Doc))
        Samples.push_back(std::move(*S));
    }
  }

  std::fprintf(stderr, "trace_report: %zu request samples from %zu lines",
               Samples.size(), LinesRead);
  if (LinesSkipped)
    std::fprintf(stderr, " (%zu unparsable lines skipped)", LinesSkipped);
  std::fprintf(stderr, "\n");

  if (Samples.empty()) {
    std::fprintf(stderr,
                 "trace_report: no serve.request / slowlog samples found\n");
    return 1;
  }

  serve::LatencyReport R = serve::foldSamples(std::move(Samples), TopK);
  serve::renderLatencyReport(std::cout, R);
  return 0;
}
