//===- bench_report.cpp - Fold bench sidecars into a trajectory ------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Aggregates the `<bench>.metrics.json` sidecars the bench binaries
/// leave behind into one dated trajectory document:
///
///   bench_report [--bench-dir DIR]... [--out-dir DIR] [--stamp S]
///                [--threshold F] [--speedup-floor F]
///                [--latency-ceiling MS] [--warn-only]
///
/// Writes `BENCH_<stamp>.json` (schema pigeon.bench.v1) into the out
/// directory, prints the throughput / latency / phase-time / accuracy
/// headlines, and runs three gates:
///  * speedup floor — any `parallel.*.speedup` metric in the *current*
///    snapshot below the floor (default 1.0) fails the run, previous
///    trajectory or not: parallelism slower than serial is a bug, not a
///    regression. Single-core records are exempt.
///  * latency ceiling — when --latency-ceiling is given (0 = off, the
///    default), any `*.p99` / `*.p99.concurrent` latency metric in the
///    current snapshot above the ceiling (ms) fails the run; `.single`
///    percentiles are exempt.
///  * regression — when an earlier BENCH_*.json exists in the out dir,
///    a throughput metric that lost more than the threshold (default
///    10%) against it fails the run, as does a latency metric that
///    *gained* more than the threshold. Any `*.speedup` metric is
///    skipped when either snapshot was taken on one core.
/// --warn-only downgrades all failures to warnings.
///
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"
#include "support/Trajectory.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

using namespace pigeon;
namespace fs = std::filesystem;

namespace {

int usage() {
  std::cerr << "usage: bench_report [--bench-dir DIR]... [--out-dir DIR]"
               " [--stamp S] [--threshold F] [--speedup-floor F]"
               " [--latency-ceiling MS] [--warn-only]\n"
               "Folds <bench>.metrics.json sidecars into BENCH_<stamp>.json,"
               " fails any parallel.*.speedup below the floor or tail"
               " latency above the ceiling, and gates throughput/latency"
               " regressions vs the previous trajectory.\n";
  return 2;
}

std::string fixed(double X, int Digits = 2) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, X);
  return Buf;
}

/// Today as YYYY-MM-DD-HHMMSS — lexicographic order is age order, which
/// is all findPrevious() needs.
std::string defaultStamp() {
  std::time_t Now = std::time(nullptr);
  std::tm Tm = {};
#if defined(_WIN32)
  gmtime_s(&Tm, &Now);
#else
  gmtime_r(&Now, &Tm);
#endif
  char Buf[32];
  std::strftime(Buf, sizeof(Buf), "%Y-%m-%d-%H%M%S", &Tm);
  return Buf;
}

/// The lexicographically-latest BENCH_*.json under \p Dir, excluding
/// \p Exclude (the file this run is about to write).
std::string findPrevious(const std::string &Dir, const std::string &Exclude) {
  std::string Best, BestName;
  std::error_code EC;
  for (const auto &Entry : fs::directory_iterator(Dir, EC)) {
    if (!Entry.is_regular_file())
      continue;
    std::string Name = Entry.path().filename().string();
    if (Name.rfind("BENCH_", 0) != 0 || Entry.path().extension() != ".json")
      continue;
    if (Name == Exclude)
      continue;
    if (Best.empty() || Name > BestName) {
      Best = Entry.path().string();
      BestName = Name;
    }
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> BenchDirs;
  std::string OutDir = ".";
  std::string Stamp;
  double Threshold = 0.10;
  double SpeedupFloor = 1.0;
  double LatencyCeilingMs = 0; // 0 = gate off.
  bool WarnOnly = false;

  std::vector<std::string> Args(argv + 1, argv + argc);
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    auto Value = [&]() -> std::string {
      return ++I < Args.size() ? Args[I] : "";
    };
    if (Arg == "--bench-dir")
      BenchDirs.push_back(Value());
    else if (Arg == "--out-dir")
      OutDir = Value();
    else if (Arg == "--stamp")
      Stamp = Value();
    else if (Arg == "--threshold")
      Threshold = std::atof(Value().c_str());
    else if (Arg == "--speedup-floor")
      SpeedupFloor = std::atof(Value().c_str());
    else if (Arg == "--latency-ceiling")
      LatencyCeilingMs = std::atof(Value().c_str());
    else if (Arg == "--warn-only")
      WarnOnly = true;
    else
      return usage();
  }
  if (BenchDirs.empty())
    BenchDirs.push_back(".");
  if (OutDir.empty() || Threshold < 0 || Threshold >= 1)
    return usage();
  if (Stamp.empty())
    Stamp = defaultStamp();

  // Fold every sidecar. Sorted scan so the document is deterministic for
  // a given set of sidecars.
  bench::Trajectory Cur;
  Cur.Stamp = Stamp;
  std::vector<std::string> Sidecars;
  for (const std::string &Dir : BenchDirs) {
    std::error_code EC;
    for (const auto &Entry : fs::directory_iterator(Dir, EC)) {
      std::string Name = Entry.path().filename().string();
      const std::string Suffix = ".metrics.json";
      if (Entry.is_regular_file() && Name.size() > Suffix.size() &&
          Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) ==
              0)
        Sidecars.push_back(Entry.path().string());
    }
  }
  std::sort(Sidecars.begin(), Sidecars.end());
  for (const std::string &Path : Sidecars) {
    std::string Error;
    std::optional<json::Value> Doc = json::parseFile(Path, &Error);
    if (!Doc) {
      std::cerr << "warning: skipping " << Path << ": " << Error << "\n";
      continue;
    }
    std::string Name = fs::path(Path).filename().string();
    Name.resize(Name.size() - std::string(".metrics.json").size());
    Cur.Benches.push_back(bench::foldSidecar(Name, *Doc));
  }
  if (Cur.Benches.empty()) {
    std::cerr << "error: no *.metrics.json sidecars under";
    for (const std::string &Dir : BenchDirs)
      std::cerr << " " << Dir;
    std::cerr << "\n";
    return 1;
  }

  // Locate the previous trajectory before writing the new one, so a
  // re-run with the same stamp never diffs a file against itself.
  std::string OutName = "BENCH_" + Stamp + ".json";
  std::string PrevPath = findPrevious(OutDir, OutName);

  std::string OutPath = OutDir + "/" + OutName;
  if (!bench::writeTrajectoryFile(OutPath, Cur)) {
    std::cerr << "error: cannot write " << OutPath << "\n";
    return 1;
  }
  std::cerr << "trajectory written to " << OutPath << "\n";

  // Headline report.
  TablePrinter Table("bench trajectory " + Stamp);
  Table.setHeader({"Bench", "Metric", "Value"});
  for (const bench::BenchRecord &B : Cur.Benches) {
    for (const auto &[Name, V] : B.Throughput)
      Table.addRow({B.Bench, Name, fixed(V)});
    for (const auto &[Name, V] : B.Latency)
      Table.addRow({B.Bench, Name, fixed(V)});
    for (const auto &[Name, V] : B.Accuracy)
      Table.addRow({B.Bench, Name, fixed(V, 4)});
    for (const auto &[Name, P] : B.Phases)
      Table.addRow({B.Bench, Name + " p50/p90/p99 (s)",
                    fixed(P.P50, 4) + " / " + fixed(P.P90, 4) + " / " +
                        fixed(P.P99, 4)});
    if (B.RssPeakKb)
      Table.addRow({B.Bench, "rss_peak_kb", std::to_string(B.RssPeakKb)});
  }
  Table.print(std::cout);

  bool Failed = false;

  // The absolute speedup floor gates the *current* snapshot alone, so it
  // runs even on a repo's very first trajectory: a parallel stage that
  // came out slower than serial is a bug today, not a regression against
  // yesterday. (Single-core records are exempt inside speedupFloor.)
  std::vector<bench::Regression> FloorViolations =
      bench::speedupFloor(Cur, SpeedupFloor);
  if (!FloorViolations.empty()) {
    TablePrinter Bad("parallel speedups below the " + fixed(SpeedupFloor) +
                     "x floor");
    Bad.setHeader({"Bench", "Metric", "Floor", "Measured"});
    for (const bench::Regression &R : FloorViolations)
      Bad.addRow({R.Bench, R.Metric, fixed(R.Before), fixed(R.After)});
    Bad.print(std::cerr);
    Failed = true;
  }

  // The latency ceiling is the same shape of gate: absolute, current
  // snapshot only, so a tail-latency blowup fails even the first run.
  if (LatencyCeilingMs > 0) {
    std::vector<bench::Regression> CeilingViolations =
        bench::latencyCeiling(Cur, LatencyCeilingMs);
    if (CeilingViolations.empty()) {
      std::cerr << "tail latency within the " << fixed(LatencyCeilingMs, 0)
                << " ms ceiling\n";
    } else {
      TablePrinter Bad("tail latency above the " + fixed(LatencyCeilingMs, 0) +
                       " ms ceiling");
      Bad.setHeader({"Bench", "Metric", "Ceiling", "Measured"});
      for (const bench::Regression &R : CeilingViolations)
        Bad.addRow({R.Bench, R.Metric, fixed(R.Before), fixed(R.After)});
      Bad.print(std::cerr);
      Failed = true;
    }
  }

  if (PrevPath.empty()) {
    std::cerr << "first trajectory in " << OutDir
              << "; nothing to compare against\n";
  } else {
    std::optional<json::Value> PrevDoc = json::parseFile(PrevPath);
    std::optional<bench::Trajectory> Prev;
    if (PrevDoc)
      Prev = bench::parseTrajectory(*PrevDoc);
    if (!Prev) {
      std::cerr << "warning: " << PrevPath
                << " is not a pigeon.bench.v1 trajectory; skipping the"
                   " comparison gate\n";
    } else {
      std::vector<bench::Regression> Regressions =
          bench::compareTrajectories(*Prev, Cur, Threshold);
      std::cerr << "compared against " << PrevPath << " (threshold "
                << fixed(Threshold * 100, 0) << "%)\n";
      if (Regressions.empty()) {
        std::cerr << "no throughput or latency regressions\n";
      } else {
        TablePrinter Bad("throughput/latency regressions vs " +
                         fs::path(PrevPath).filename().string());
        Bad.setHeader({"Bench", "Metric", "Before", "After", "Ratio"});
        for (const bench::Regression &R : Regressions)
          Bad.addRow({R.Bench, R.Metric, fixed(R.Before), fixed(R.After),
                      fixed(R.Ratio, 3)});
        Bad.print(std::cerr);
        Failed = true;
      }
    }
  }

  if (!Failed)
    return 0;
  if (WarnOnly) {
    std::cerr << "warn-only: not failing the run\n";
    return 0;
  }
  return 1;
}
