//===- slowlog_test.cpp - Unit tests for serve/SlowLog ---------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "serve/SlowLog.h"

#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace pigeon;
using namespace pigeon::serve;

namespace {

RequestSample sampleWith(uint64_t Rid, double TotalMs) {
  RequestSample S;
  S.Rid = Rid;
  S.IdJson = std::to_string(Rid * 10);
  S.TotalMs = TotalMs;
  // A deterministic decomposition that sums exactly to TotalMs.
  S.StageMs = {TotalMs * 0.10, TotalMs * 0.05, TotalMs * 0.30,
               TotalMs * 0.05, TotalMs * 0.40, TotalMs * 0.10};
  S.BatchSize = 4;
  S.DepthAtAdmit = 2;
  return S;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry rendering / parsing
//===----------------------------------------------------------------------===//

TEST(SlowLogEntry, RenderParseRoundTrip) {
  RequestSample S = sampleWith(7, 12.5);
  std::string Line = renderSlowLogEntry(S, {5, 6, 7, 8}, 123.25);

  std::string Error;
  std::optional<json::Value> Doc = json::parse(Line, &Error);
  ASSERT_TRUE(Doc.has_value()) << Error << " in: " << Line;
  EXPECT_EQ(Doc->find("schema")->str(), "pigeon.slowlog.v1");
  EXPECT_DOUBLE_EQ(Doc->find("uptime_seconds")->number(), 123.25);
  ASSERT_TRUE(Doc->find("batch_rids")->isArray());
  EXPECT_EQ(Doc->find("batch_rids")->array().size(), 4u);
  EXPECT_TRUE(Doc->find("code")->isNull());

  std::optional<RequestSample> Back = parseRequestSample(*Doc);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Rid, S.Rid);
  EXPECT_EQ(Back->IdJson, S.IdJson);
  EXPECT_TRUE(Back->Ok);
  EXPECT_DOUBLE_EQ(Back->TotalMs, S.TotalMs);
  for (size_t I = 0; I < NumStages; ++I)
    EXPECT_DOUBLE_EQ(Back->StageMs[I], S.StageMs[I]) << StageNames[I];
  EXPECT_EQ(Back->BatchSize, 4u);
  EXPECT_EQ(Back->DepthAtAdmit, 2u);
}

TEST(SlowLogEntry, ErrorEntriesCarryTheCode) {
  RequestSample S = sampleWith(3, 1.5);
  S.Ok = false;
  S.Code = "parse_error";
  std::string Line = renderSlowLogEntry(S, {3}, 0.5);
  std::optional<json::Value> Doc = json::parse(Line);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("code")->str(), "parse_error");

  std::optional<RequestSample> Back = parseRequestSample(*Doc);
  ASSERT_TRUE(Back.has_value());
  EXPECT_FALSE(Back->Ok);
  EXPECT_EQ(Back->Code, "parse_error");
}

TEST(SlowLogEntry, ParsesServeRequestEventRecords) {
  // The pigeon.events.v1 shape: stage fields in seconds, short batch
  // context names. parseRequestSample must normalize to milliseconds.
  std::optional<json::Value> Doc = json::parse(
      "{\"event\":\"serve.request\",\"ts\":1.5,\"tid\":2,\"rid\":9,"
      "\"id\":\"abc\",\"ok\":true,\"wall\":0.004,\"queue\":0.001,"
      "\"seal\":0.0005,\"parse\":0.001,\"remap\":0.0005,"
      "\"predict\":0.0005,\"render\":0.0005,\"batch\":3,\"depth\":1}");
  ASSERT_TRUE(Doc.has_value());
  std::optional<RequestSample> S = parseRequestSample(*Doc);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Rid, 9u);
  EXPECT_EQ(S->IdJson, "\"abc\"");
  EXPECT_DOUBLE_EQ(S->TotalMs, 4.0);
  EXPECT_DOUBLE_EQ(S->StageMs[0], 1.0);
  EXPECT_DOUBLE_EQ(S->StageMs[1], 0.5);
  EXPECT_EQ(S->BatchSize, 3u);
  EXPECT_EQ(S->DepthAtAdmit, 1u);
}

TEST(SlowLogEntry, RejectsForeignLines) {
  for (const char *Line :
       {"{\"event\":\"span.begin\",\"ts\":0.1,\"name\":\"parse\"}",
        "{\"event\":\"stream.begin\",\"schema\":\"pigeon.events.v1\"}",
        "{\"schema\":\"pigeon.serve.v1\",\"id\":1,\"ok\":true}", "[1,2,3]",
        "42"}) {
    std::optional<json::Value> Doc = json::parse(Line);
    ASSERT_TRUE(Doc.has_value()) << Line;
    EXPECT_FALSE(parseRequestSample(*Doc).has_value()) << Line;
  }
}

//===----------------------------------------------------------------------===//
// The byte-capped capture ring
//===----------------------------------------------------------------------===//

TEST(SlowLogRing, DisabledAppendIsANoOp) {
  SlowLog Log;
  EXPECT_FALSE(Log.enabled());
  Log.append("{\"x\":1}");
  EXPECT_EQ(Log.appended(), 0u);
  EXPECT_TRUE(Log.lines().empty());
  EXPECT_TRUE(Log.flush()); // Nothing to write is not a failure.
}

TEST(SlowLogRing, ByteCapEvictsOldestFirst) {
  SlowLog Log;
  const std::string Path = ::testing::TempDir() + "slowlog_cap.jsonl";
  // Cap sized for three 22-byte entries (23 with the newline).
  Log.open(Path, /*MaxBytes=*/80);
  for (int I = 0; I < 10; ++I) {
    std::string Entry = "{\"rid\":" + std::to_string(I) + ",\"pad\":\"xxxx\"}";
    ASSERT_EQ(Entry.size(), 22u);
    Log.append(Entry);
  }
  EXPECT_EQ(Log.appended(), 10u);
  EXPECT_GT(Log.evicted(), 0u);
  std::vector<std::string> Lines = Log.lines();
  ASSERT_FALSE(Lines.empty());
  ASSERT_LE(Lines.size(), 3u);
  // The newest entry is always retained; the survivors are the tail.
  EXPECT_NE(Lines.back().find("\"rid\":9"), std::string::npos);
  EXPECT_NE(Lines.front().find(
                "\"rid\":" + std::to_string(10 - Lines.size())),
            std::string::npos);
  Log.close();
  std::remove(Path.c_str());
}

TEST(SlowLogRing, OversizedSingleEntryIsStillKept) {
  SlowLog Log;
  const std::string Path = ::testing::TempDir() + "slowlog_big.jsonl";
  Log.open(Path, /*MaxBytes=*/8);
  Log.append(std::string(100, 'x'));
  EXPECT_EQ(Log.lines().size(), 1u);
  Log.close();
  std::remove(Path.c_str());
}

TEST(SlowLogRing, FlushRewritesTheFileAtomically) {
  SlowLog Log;
  const std::string Path = ::testing::TempDir() + "slowlog_flush.jsonl";
  std::remove(Path.c_str());
  Log.open(Path);
  RequestSample S = sampleWith(1, 9.0);
  Log.append(renderSlowLogEntry(S, {1}, 0.1));
  ASSERT_TRUE(Log.flush());
  std::string First = slurp(Path);
  EXPECT_NE(First.find("pigeon.slowlog.v1"), std::string::npos);

  // A second flush with no new entries is a no-op success; appending
  // again grows the same file on the next flush.
  ASSERT_TRUE(Log.flush());
  Log.append(renderSlowLogEntry(sampleWith(2, 3.0), {2}, 0.2));
  ASSERT_TRUE(Log.flush());
  std::string Second = slurp(Path);
  EXPECT_GT(Second.size(), First.size());
  EXPECT_NE(Second.find("\"rid\":2"), std::string::npos);

  // close() flushes and disables.
  Log.close();
  EXPECT_FALSE(Log.enabled());
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Report folding
//===----------------------------------------------------------------------===//

TEST(FoldSamples, ComputesStageStatsAndTopK) {
  std::vector<RequestSample> Samples;
  for (int I = 1; I <= 10; ++I)
    Samples.push_back(sampleWith(static_cast<uint64_t>(I), I * 1.0));

  LatencyReport R = foldSamples(Samples, /*TopK=*/3);
  EXPECT_EQ(R.Samples, 10u);
  EXPECT_DOUBLE_EQ(R.TotalP50Ms, 5.0);  // Nearest-rank on 1..10.
  EXPECT_DOUBLE_EQ(R.TotalP99Ms, 10.0);

  // Stage "predict" is 40% of every request, so 40% of the grand total.
  const StageStats &Predict = R.Stages[4];
  EXPECT_EQ(Predict.Count, 10u);
  EXPECT_NEAR(Predict.Share, 0.40, 1e-9);
  EXPECT_NEAR(Predict.MeanMs, 0.40 * 5.5, 1e-9);
  EXPECT_NEAR(Predict.MaxMs, 4.0, 1e-9);

  // Shares cover the whole timeline: the six stages sum to 100%.
  double ShareSum = 0;
  for (const StageStats &St : R.Stages)
    ShareSum += St.Share;
  EXPECT_NEAR(ShareSum, 1.0, 1e-9);

  // Top-3 slowest, slowest first.
  ASSERT_EQ(R.Slowest.size(), 3u);
  EXPECT_EQ(R.Slowest[0].Rid, 10u);
  EXPECT_EQ(R.Slowest[1].Rid, 9u);
  EXPECT_EQ(R.Slowest[2].Rid, 8u);
}

TEST(FoldSamples, EmptyInputYieldsAnEmptyReport) {
  LatencyReport R = foldSamples({}, 5);
  EXPECT_EQ(R.Samples, 0u);
  EXPECT_DOUBLE_EQ(R.TotalP50Ms, 0.0);
  EXPECT_TRUE(R.Slowest.empty());
}

TEST(RenderLatencyReport, PrintsBothTables) {
  std::vector<RequestSample> Samples = {sampleWith(1, 4.0),
                                        sampleWith(2, 8.0)};
  std::ostringstream OS;
  renderLatencyReport(OS, foldSamples(Samples, 5));
  const std::string Text = OS.str();
  EXPECT_NE(Text.find("latency decomposition (2 requests"),
            std::string::npos);
  for (const char *Stage : StageNames)
    EXPECT_NE(Text.find(Stage), std::string::npos) << Stage;
  EXPECT_NE(Text.find("slowest requests"), std::string::npos);
}
