//===- ast_test.cpp - Unit tests for the generic AST -----------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Ast.h"

#include <gtest/gtest.h>

using namespace pigeon;
using namespace pigeon::ast;

namespace {

/// Builds the paper's Fig. 1 AST fragment:
///   While
///     UnaryPrefix!
///       SymbolRef d
///     If
///       Call
///         SymbolRef someCondition
///       Assign=
///         SymbolRef d
///         True true
struct Fig1Fixture {
  StringInterner SI;
  ElementId D = InvalidElement;
  ElementId Cond = InvalidElement;
  NodeId FirstD = InvalidNode;
  NodeId SecondD = InvalidNode;
  Tree T;

  Fig1Fixture() : T(build()) {}

  Tree build() {
    TreeBuilder B(SI);
    D = B.addElement("d", ElementKind::LocalVar, /*Predictable=*/true);
    Cond = B.addElement("someCondition", ElementKind::Method,
                        /*Predictable=*/false);
    B.begin("While");
    B.begin("UnaryPrefix!");
    FirstD = B.terminal("SymbolRef", "d", D);
    B.end();
    B.begin("If");
    B.begin("Call");
    B.terminal("SymbolRef", "someCondition", Cond);
    B.end();
    B.begin("Assign=");
    SecondD = B.terminal("SymbolRef", "d", D);
    B.terminal("True", "true");
    B.end();
    B.end();
    B.end();
    return std::move(B).finish();
  }
};

TEST(Ast, RootIsNodeZero) {
  Fig1Fixture F;
  EXPECT_EQ(F.T.root(), 0u);
  EXPECT_EQ(F.SI.str(F.T.node(F.T.root()).Kind), "While");
  EXPECT_EQ(F.T.node(F.T.root()).Parent, InvalidNode);
  EXPECT_EQ(F.T.node(F.T.root()).Depth, 0u);
}

TEST(Ast, SexprMatchesStructure) {
  Fig1Fixture F;
  EXPECT_EQ(F.T.sexpr(),
            "(While (UnaryPrefix! (SymbolRef d)) (If (Call (SymbolRef "
            "someCondition)) (Assign= (SymbolRef d) (True true))))");
}

TEST(Ast, TerminalsInSourceOrder) {
  Fig1Fixture F;
  const std::vector<NodeId> &Leaves = F.T.terminals();
  ASSERT_EQ(Leaves.size(), 4u);
  EXPECT_EQ(F.SI.str(F.T.node(Leaves[0]).Value), "d");
  EXPECT_EQ(F.SI.str(F.T.node(Leaves[1]).Value), "someCondition");
  EXPECT_EQ(F.SI.str(F.T.node(Leaves[2]).Value), "d");
  EXPECT_EQ(F.SI.str(F.T.node(Leaves[3]).Value), "true");
}

TEST(Ast, TerminalPredicate) {
  Fig1Fixture F;
  EXPECT_TRUE(F.T.node(F.FirstD).isTerminal());
  EXPECT_FALSE(F.T.node(F.T.root()).isTerminal());
}

TEST(Ast, ParentChainAndDepths) {
  Fig1Fixture F;
  const Node &FirstD = F.T.node(F.FirstD);
  EXPECT_EQ(F.SI.str(F.T.node(FirstD.Parent).Kind), "UnaryPrefix!");
  EXPECT_EQ(FirstD.Depth, 2u);
  const Node &SecondD = F.T.node(F.SecondD);
  EXPECT_EQ(F.SI.str(F.T.node(SecondD.Parent).Kind), "Assign=");
  EXPECT_EQ(SecondD.Depth, 3u);
}

TEST(Ast, IndexInParent) {
  Fig1Fixture F;
  // Assign= has children [SymbolRef d, True true].
  const Node &SecondD = F.T.node(F.SecondD);
  EXPECT_EQ(SecondD.IndexInParent, 0u);
  NodeId Assign = SecondD.Parent;
  auto Kids = F.T.children(Assign);
  ASSERT_EQ(Kids.size(), 2u);
  EXPECT_EQ(F.T.node(Kids[1]).IndexInParent, 1u);
}

TEST(Ast, LcaOfTheTwoDs) {
  Fig1Fixture F;
  // Fig. 1's path pivots at While: d ↑ UnaryPrefix! ↑ While ↓ If ↓ Assign= ↓ d.
  NodeId Lca = F.T.lca(F.FirstD, F.SecondD);
  EXPECT_EQ(F.SI.str(F.T.node(Lca).Kind), "While");
}

TEST(Ast, LcaOfNodeWithItself) {
  Fig1Fixture F;
  EXPECT_EQ(F.T.lca(F.FirstD, F.FirstD), F.FirstD);
}

TEST(Ast, LcaWithAncestor) {
  Fig1Fixture F;
  NodeId Root = F.T.root();
  EXPECT_EQ(F.T.lca(F.FirstD, Root), Root);
  EXPECT_EQ(F.T.lca(Root, F.SecondD), Root);
}

TEST(Ast, ElementOccurrencesAreLinked) {
  Fig1Fixture F;
  auto Occs = F.T.occurrences(F.D);
  ASSERT_EQ(Occs.size(), 2u);
  EXPECT_EQ(Occs[0], F.FirstD);
  EXPECT_EQ(Occs[1], F.SecondD);
}

TEST(Ast, ElementMetadata) {
  Fig1Fixture F;
  const ElementInfo &Info = F.T.element(F.D);
  EXPECT_EQ(F.SI.str(Info.Name), "d");
  EXPECT_EQ(Info.Kind, ElementKind::LocalVar);
  EXPECT_TRUE(Info.Predictable);
  EXPECT_FALSE(F.T.element(F.Cond).Predictable);
}

TEST(Ast, ElementWithNoOccurrences) {
  StringInterner SI;
  TreeBuilder B(SI);
  ElementId Unused =
      B.addElement("ghost", ElementKind::LocalVar, /*Predictable=*/true);
  B.begin("Root");
  B.terminal("Leaf", "x");
  B.end();
  Tree T = std::move(B).finish();
  EXPECT_TRUE(T.occurrences(Unused).empty());
}

TEST(Ast, TypeAnnotations) {
  Fig1Fixture F;
  Symbol Bool = F.SI.intern("boolean");
  F.T.setType(F.SecondD, Bool);
  EXPECT_EQ(F.T.typeOf(F.SecondD), Bool);
  EXPECT_FALSE(F.T.typeOf(F.FirstD).isValid());
  EXPECT_EQ(F.T.typedNodes(), std::vector<NodeId>{F.SecondD});
}

TEST(Ast, DumpContainsAllKindsIndented) {
  Fig1Fixture F;
  std::string Dump = F.T.dump();
  EXPECT_NE(Dump.find("While\n"), std::string::npos);
  EXPECT_NE(Dump.find("    SymbolRef: d"), std::string::npos);
}

TEST(Ast, SingleTerminalUnderRoot) {
  StringInterner SI;
  TreeBuilder B(SI);
  B.begin("Program");
  NodeId Leaf = B.terminal("Num", "42");
  B.end();
  Tree T = std::move(B).finish();
  EXPECT_EQ(T.size(), 2u);
  EXPECT_EQ(T.node(Leaf).Parent, T.root());
  EXPECT_EQ(T.terminals().size(), 1u);
}

TEST(Ast, WideNodeChildIndices) {
  // Fig. 5's `var a, b, c, d;` shape: a flat VarDef list.
  StringInterner SI;
  TreeBuilder B(SI);
  B.begin("Var");
  for (const char *Name : {"a", "b", "c", "d"}) {
    B.begin("VarDef");
    B.terminal("SymbolVar", Name);
    B.end();
  }
  Tree T = std::move(B).finish();
  auto Kids = T.children(T.root());
  ASSERT_EQ(Kids.size(), 4u);
  for (uint32_t I = 0; I < 4; ++I)
    EXPECT_EQ(T.node(Kids[I]).IndexInParent, I);
}

TEST(Ast, ElementKindNames) {
  EXPECT_STREQ(elementKindName(ElementKind::LocalVar), "local");
  EXPECT_STREQ(elementKindName(ElementKind::Method), "method");
  EXPECT_STREQ(elementKindName(ElementKind::Literal), "literal");
}

} // namespace
