//===- support_test.cpp - Unit tests for src/support -----------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Hashing.h"
#include "support/Rng.h"
#include "support/StringInterner.h"
#include "support/SubToken.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

using namespace pigeon;

//===----------------------------------------------------------------------===//
// StringInterner
//===----------------------------------------------------------------------===//

TEST(StringInterner, InternIsIdempotent) {
  StringInterner SI;
  Symbol A = SI.intern("while");
  Symbol B = SI.intern("while");
  EXPECT_EQ(A, B);
  EXPECT_EQ(SI.str(A), "while");
}

TEST(StringInterner, DistinctStringsGetDistinctSymbols) {
  StringInterner SI;
  Symbol A = SI.intern("foo");
  Symbol B = SI.intern("bar");
  EXPECT_NE(A, B);
  EXPECT_EQ(SI.str(A), "foo");
  EXPECT_EQ(SI.str(B), "bar");
}

TEST(StringInterner, DefaultSymbolIsInvalid) {
  Symbol S;
  EXPECT_FALSE(S.isValid());
  EXPECT_EQ(S.index(), 0u);
}

TEST(StringInterner, LookupFindsOnlyInterned) {
  StringInterner SI;
  SI.intern("present");
  EXPECT_TRUE(SI.lookup("present").isValid());
  EXPECT_FALSE(SI.lookup("absent").isValid());
}

TEST(StringInterner, EmptyStringInternsToValidSymbolDistinctFromDefault) {
  StringInterner SI;
  // The empty string occupies the reserved slot 0, so interning "" must
  // yield a *new* valid symbol rather than the invalid one.
  Symbol S = SI.intern("");
  EXPECT_TRUE(S.isValid());
  EXPECT_EQ(SI.str(S), "");
}

TEST(StringInterner, ReferencesStableAcrossGrowth) {
  StringInterner SI;
  Symbol First = SI.intern("anchor");
  // str() views interner-owned pages that never move: the view's data
  // pointer must survive any amount of growth.
  const char *Ptr = SI.str(First).data();
  for (int I = 0; I < 10000; ++I)
    SI.intern("filler_" + std::to_string(I));
  EXPECT_EQ(SI.str(First).data(), Ptr);
  EXPECT_EQ(SI.str(First), "anchor");
  EXPECT_EQ(SI.lookup("anchor"), First);
}

TEST(StringInterner, FromIndexRoundTrips) {
  StringInterner SI;
  Symbol S = SI.intern("x");
  EXPECT_EQ(Symbol::fromIndex(S.index()), S);
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, SameSeedSameSequence) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng A = Rng::forStream(42, "alpha");
  Rng B = Rng::forStream(42, "beta");
  EXPECT_NE(A.next(), B.next());
}

TEST(Rng, NamedStreamIsDeterministic) {
  Rng A = Rng::forStream(7, "datagen");
  Rng B = Rng::forStream(7, "datagen");
  EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng R(1);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng R(1);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(R.nextBelow(1), 0u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(3);
  std::set<int64_t> Seen;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u) << "all five values should appear";
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng R(11);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.nextBool(0.0));
    EXPECT_TRUE(R.nextBool(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng R(13);
  int Hits = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Hits += R.nextBool(0.3);
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.3, 0.02);
}

TEST(Rng, PickWeightedRespectsZeroWeights) {
  Rng R(17);
  std::vector<double> W = {0.0, 1.0, 0.0};
  for (int I = 0; I < 200; ++I)
    EXPECT_EQ(R.pickWeighted(W), 1u);
}

TEST(Rng, PickWeightedRoughlyProportional) {
  Rng R(19);
  std::vector<double> W = {1.0, 3.0};
  int Count1 = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Count1 += (R.pickWeighted(W) == 1);
  EXPECT_NEAR(static_cast<double>(Count1) / N, 0.75, 0.02);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng R(23);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng R(29);
  std::vector<int> Empty;
  R.shuffle(Empty);
  EXPECT_TRUE(Empty.empty());
  std::vector<int> One = {42};
  R.shuffle(One);
  EXPECT_EQ(One, std::vector<int>{42});
}

//===----------------------------------------------------------------------===//
// SubToken
//===----------------------------------------------------------------------===//

TEST(SubToken, NormalizeLowercasesAndStrips) {
  EXPECT_EQ(normalizeName("totalCount"), "totalcount");
  EXPECT_EQ(normalizeName("total_count"), "totalcount");
  EXPECT_EQ(normalizeName("TOTAL-COUNT$"), "totalcount");
}

TEST(SubToken, PaperExampleMatches) {
  // §5.2: totalCount is an exact match to total_count.
  EXPECT_TRUE(namesMatch("totalCount", "total_count"));
  EXPECT_FALSE(namesMatch("totalCount", "count"));
}

TEST(SubToken, MatchIsCaseInsensitive) {
  EXPECT_TRUE(namesMatch("Done", "done"));
  EXPECT_TRUE(namesMatch("HTTPClient", "httpClient"));
}

TEST(SubToken, SplitCamelCase) {
  EXPECT_EQ(splitSubTokens("totalCount"),
            (std::vector<std::string>{"total", "count"}));
}

TEST(SubToken, SplitSnakeCase) {
  EXPECT_EQ(splitSubTokens("total_count"),
            (std::vector<std::string>{"total", "count"}));
}

TEST(SubToken, SplitAcronymRun) {
  EXPECT_EQ(splitSubTokens("HTTPServer"),
            (std::vector<std::string>{"http", "server"}));
}

TEST(SubToken, SplitDigits) {
  EXPECT_EQ(splitSubTokens("manager2"),
            (std::vector<std::string>{"manager", "2"}));
}

TEST(SubToken, SplitPaperCompoundExample) {
  // §5.3: multithreadedHttpConnectionManager.
  EXPECT_EQ(splitSubTokens("multithreadedHttpConnectionManager"),
            (std::vector<std::string>{"multithreaded", "http", "connection",
                                      "manager"}));
}

TEST(SubToken, SplitSingleWord) {
  EXPECT_EQ(splitSubTokens("value"), (std::vector<std::string>{"value"}));
}

TEST(SubToken, SplitEmpty) {
  EXPECT_TRUE(splitSubTokens("").empty());
  EXPECT_TRUE(splitSubTokens("___").empty());
}

TEST(SubToken, F1PerfectMatch) {
  SubTokenScore S = scoreSubTokens("getCount", "get_count");
  EXPECT_DOUBLE_EQ(S.Precision, 1.0);
  EXPECT_DOUBLE_EQ(S.Recall, 1.0);
  EXPECT_DOUBLE_EQ(S.F1, 1.0);
}

TEST(SubToken, F1PartialMatch) {
  // Predicted getFoo vs actual getFooBar: precision 1, recall 2/3.
  SubTokenScore S = scoreSubTokens("getFoo", "getFooBar");
  EXPECT_DOUBLE_EQ(S.Precision, 1.0);
  EXPECT_NEAR(S.Recall, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(S.F1, 0.8, 1e-9);
}

TEST(SubToken, F1NoOverlap) {
  SubTokenScore S = scoreSubTokens("foo", "bar");
  EXPECT_DOUBLE_EQ(S.F1, 0.0);
}

TEST(SubToken, F1DuplicateSubTokensCountedAsMultiset) {
  // Actual has one "a"; predicting "aA" should not get double credit.
  SubTokenScore S = scoreSubTokens("a_a", "a_b");
  EXPECT_DOUBLE_EQ(S.Precision, 0.5);
  EXPECT_DOUBLE_EQ(S.Recall, 0.5);
}

//===----------------------------------------------------------------------===//
// TablePrinter
//===----------------------------------------------------------------------===//

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T("demo");
  T.setHeader({"Language", "Accuracy"});
  T.addRow({"JavaScript", "67.3%"});
  T.addRow({"C#", "56.1%"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("== demo =="), std::string::npos);
  EXPECT_NE(Out.find("JavaScript  67.3%"), std::string::npos);
  EXPECT_NE(Out.find("C#          56.1%"), std::string::npos);
}

TEST(TablePrinter, PercentFormatting) {
  EXPECT_EQ(TablePrinter::percent(0.673), "67.3%");
  EXPECT_EQ(TablePrinter::percent(1.0), "100.0%");
  EXPECT_EQ(TablePrinter::percent(0.0), "0.0%");
}

TEST(TablePrinter, NumFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(TablePrinter, CsvEscapesCommasAndQuotes) {
  TablePrinter T("");
  T.setHeader({"a", "b"});
  T.addRow({"x,y", "he said \"hi\""});
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_EQ(OS.str(), "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(TablePrinter, RaggedRowsArePadded) {
  TablePrinter T("");
  T.setHeader({"a", "b", "c"});
  T.addRow({"1"});
  std::ostringstream OS;
  T.print(OS);
  EXPECT_NE(OS.str().find('1'), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

TEST(Hashing, CombineIsOrderSensitive) {
  uint64_t AB = hashCombine(hashCombine(0, 1), 2);
  uint64_t BA = hashCombine(hashCombine(0, 2), 1);
  EXPECT_NE(AB, BA);
}

TEST(Hashing, FinalizeIsBijectiveish) {
  // Distinct small inputs should not collide after finalization.
  std::set<uint64_t> Seen;
  for (uint64_t I = 0; I < 1000; ++I)
    Seen.insert(hashFinalize(I));
  EXPECT_EQ(Seen.size(), 1000u);
}

//===----------------------------------------------------------------------===//
// Timer
//===----------------------------------------------------------------------===//

TEST(Timer, MonotonicNonNegative) {
  Timer T;
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(A, 0.0);
  EXPECT_GE(B, A);
}
