//===- nwise_test.cpp - Unit tests for n-wise paths (§4) --------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/js/JsParser.h"
#include "ml/crf/Crf.h"
#include "paths/Paths.h"

#include <gtest/gtest.h>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::paths;

namespace {

std::optional<Tree> parseJs(std::string_view Source, StringInterner &SI) {
  lang::ParseResult R = js::parse(Source, SI);
  EXPECT_TRUE(R.ok()) << Source;
  return std::move(R.Tree);
}

TEST(TriPath, EncodesStarShape) {
  StringInterner SI;
  auto T = parseJs("x = a + b;", SI);
  // Terminals: x, a, b. Common ancestor of all three: Assign=.
  auto Leaves = T->terminals();
  ASSERT_EQ(Leaves.size(), 3u);
  EXPECT_EQ(triPathString(*T, Leaves[0], Leaves[1], Leaves[2],
                          Abstraction::Full),
            "SymbolRef^Assign=(_Binary+_SymbolRef)(_Binary+_SymbolRef)");
}

TEST(TriPath, ChainFromFirstEndToCommonAncestor) {
  StringInterner SI;
  auto T = parseJs("f(a, b, c);", SI);
  auto Leaves = T->terminals(); // f, a, b, c.
  ASSERT_EQ(Leaves.size(), 4u);
  EXPECT_EQ(triPathString(*T, Leaves[1], Leaves[2], Leaves[3],
                          Abstraction::Full),
            "SymbolRef^Call(_SymbolRef)(_SymbolRef)");
}

TEST(TriPath, TopAbstractionKeepsOnlyAncestor) {
  StringInterner SI;
  auto T = parseJs("x = a + b;", SI);
  auto Leaves = T->terminals();
  EXPECT_EQ(triPathString(*T, Leaves[0], Leaves[1], Leaves[2],
                          Abstraction::Top),
            "Assign=");
}

TEST(TriPath, NoPathCollapses) {
  StringInterner SI;
  auto T = parseJs("x = a + b;", SI);
  auto Leaves = T->terminals();
  EXPECT_EQ(triPathString(*T, Leaves[0], Leaves[1], Leaves[2],
                          Abstraction::NoPath),
            "rel3");
}

TEST(TriPath, ForgetOrderIsSortedBag) {
  StringInterner SI;
  auto T = parseJs("x = a + b;", SI);
  auto Leaves = T->terminals();
  std::string Bag = triPathString(*T, Leaves[0], Leaves[1], Leaves[2],
                                  Abstraction::ForgetOrder);
  // Sorted bag: Assign= precedes Binary+ precedes SymbolRef.
  EXPECT_EQ(Bag, "Assign= Binary+ Binary+ SymbolRef SymbolRef SymbolRef");
}

TEST(TriExtract, ConsecutiveTriplesWithinLimits) {
  StringInterner SI;
  auto T = parseJs("f(a, b, c, d);", SI);
  PathTable Table;
  ExtractionConfig Config;
  auto Tris = extractTriContexts(*T, Config, Table);
  // Terminals f,a,b,c,d → triples (f,a,b) (a,b,c) (b,c,d).
  ASSERT_EQ(Tris.size(), 3u);
  for (const TriContext &Ctx : Tris) {
    EXPECT_LT(Ctx.A, Ctx.B);
    EXPECT_LT(Ctx.B, Ctx.C);
    EXPECT_NE(Ctx.Path, InvalidPath);
  }
}

TEST(TriExtract, RespectsLengthLimitOnExtremePair) {
  StringInterner SI;
  auto T = parseJs("while (p) { q(); } while (r) { s(); }", SI);
  PathTable Table;
  ExtractionConfig Tight;
  Tight.MaxLength = 2;
  auto Tris = extractTriContexts(*T, Tight, Table);
  for (const TriContext &Ctx : Tris) {
    PathShape Shape = pathShape(*T, Ctx.A, Ctx.C);
    EXPECT_LE(Shape.Length, 2);
  }
}

TEST(TriExtract, SharedTableAcrossTrees) {
  StringInterner SI;
  auto T1 = parseJs("x = a + b;", SI);
  auto T2 = parseJs("y = c + d;", SI);
  PathTable Table;
  ExtractionConfig Config;
  auto C1 = extractTriContexts(*T1, Config, Table);
  auto C2 = extractTriContexts(*T2, Config, Table);
  ASSERT_FALSE(C1.empty());
  ASSERT_FALSE(C2.empty());
  EXPECT_EQ(C1[0].Path, C2[0].Path)
      << "identical triples in different trees share a PathId";
}

//===----------------------------------------------------------------------===//
// CRF integration
//===----------------------------------------------------------------------===//

crf::ElementSelector varSelector() {
  return [](const ElementInfo &Info) {
    return Info.Predictable && (Info.Kind == ElementKind::LocalVar ||
                                Info.Kind == ElementKind::Parameter);
  };
}

TEST(TriFactors, SingleUnknownTriplesBecomeFactors) {
  StringInterner SI;
  auto T = parseJs("var d = false; use(d, true);", SI);
  PathTable Table;
  ExtractionConfig Config;
  auto Pairs = extractPathContexts(*T, Config, Table);
  crf::CrfGraph G = crf::buildGraph(*T, Pairs, varSelector());
  size_t Before = G.Factors.size();
  auto Tris = extractTriContexts(*T, Config, Table);
  crf::addTriFactors(G, *T, Tris, varSelector(), SI);
  EXPECT_GT(G.Factors.size(), Before)
      << "triples touching `d` must add factors";
  // Every added factor links the unknown to a known composite node.
  for (size_t F = Before; F < G.Factors.size(); ++F) {
    const crf::Factor &Fac = G.Factors[F];
    EXPECT_FALSE(Fac.Unary);
    EXPECT_NE(G.Nodes[Fac.A].Known, G.Nodes[Fac.B].Known);
  }
}

TEST(TriFactors, AllKnownTriplesAreSkipped) {
  StringInterner SI;
  auto T = parseJs("use(1, 2, 3);", SI);
  PathTable Table;
  ExtractionConfig Config;
  crf::CrfGraph G =
      crf::buildGraph(*T, extractPathContexts(*T, Config, Table),
                      varSelector());
  size_t Before = G.Factors.size();
  crf::addTriFactors(G, *T, extractTriContexts(*T, Config, Table),
                     varSelector(), SI);
  EXPECT_EQ(G.Factors.size(), Before);
}

TEST(TriFactors, CompositeLabelsJoinKnownEnds) {
  StringInterner SI;
  auto T = parseJs("var d = false; use(d, true);", SI);
  PathTable Table;
  ExtractionConfig Config;
  crf::CrfGraph G =
      crf::buildGraph(*T, extractPathContexts(*T, Config, Table),
                      varSelector());
  crf::addTriFactors(G, *T, extractTriContexts(*T, Config, Table),
                     varSelector(), SI);
  bool SawComposite = false;
  for (const crf::GraphNode &N : G.Nodes) {
    if (!N.Known)
      continue;
    if (SI.str(N.Gold).find('+') != std::string::npos)
      SawComposite = true;
  }
  EXPECT_TRUE(SawComposite);
}

} // namespace
