//===- java_types_test.cpp - Unit tests for the MiniJava type checker ------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/java/ClassPath.h"
#include "lang/java/JavaParser.h"
#include "lang/java/TypeChecker.h"

#include <gtest/gtest.h>

#include <map>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::java;

namespace {

/// Parses, type-checks, and returns a map from node sexpr-kind+value hints
/// to type strings. For assertions we expose: all (kind, type) pairs and a
/// helper that finds the type of the first node of a given kind.
struct Checked {
  StringInterner SI;
  std::optional<Tree> T;
  size_t Annotated = 0;

  explicit Checked(std::string_view Source) {
    lang::ParseResult R = java::parse(Source, SI);
    EXPECT_TRUE(R.Tree.has_value());
    for (const lang::Diagnostic &D : R.Diags)
      ADD_FAILURE() << "diagnostic: " << D.str();
    T = std::move(R.Tree);
    if (T)
      Annotated = annotateTypes(*T, ClassPath::standard());
  }

  /// Type of the first node whose kind is \p Kind, or "".
  std::string typeOfKind(std::string_view Kind) const {
    for (NodeId Id = 0; Id < T->size(); ++Id) {
      if (SI.str(T->node(Id).Kind) != Kind)
        continue;
      Symbol Ty = T->typeOf(Id);
      if (Ty.isValid())
        return std::string(SI.str(Ty));
    }
    return "";
  }

  /// Type of the NameExpr whose SimpleName value is \p Name, or "".
  std::string typeOfName(std::string_view Name) const {
    for (NodeId Id = 0; Id < T->size(); ++Id) {
      if (SI.str(T->node(Id).Kind) != "NameExpr")
        continue;
      auto Kids = T->children(Id);
      if (Kids.empty() || SI.str(T->node(Kids[0]).Value) != Name)
        continue;
      Symbol Ty = T->typeOf(Id);
      if (Ty.isValid())
        return std::string(SI.str(Ty));
    }
    return "";
  }
};

//===----------------------------------------------------------------------===//
// Type-string utilities
//===----------------------------------------------------------------------===//

TEST(TypeStrings, ParsePlainType) {
  ParsedType P = parseTypeString("java.lang.String");
  EXPECT_EQ(P.Base, "java.lang.String");
  EXPECT_TRUE(P.Args.empty());
}

TEST(TypeStrings, ParseGenericType) {
  ParsedType P = parseTypeString("java.util.Map<java.lang.String,int>");
  EXPECT_EQ(P.Base, "java.util.Map");
  ASSERT_EQ(P.Args.size(), 2u);
  EXPECT_EQ(P.Args[0], "java.lang.String");
  EXPECT_EQ(P.Args[1], "int");
}

TEST(TypeStrings, ParseNestedGenericType) {
  ParsedType P =
      parseTypeString("java.util.List<java.util.Map<java.lang.String,int>>");
  EXPECT_EQ(P.Base, "java.util.List");
  ASSERT_EQ(P.Args.size(), 1u);
  EXPECT_EQ(P.Args[0], "java.util.Map<java.lang.String,int>");
}

TEST(TypeStrings, SubstitutePlaceholders) {
  EXPECT_EQ(substituteTypeArgs("T0", {"java.lang.Integer"}),
            "java.lang.Integer");
  EXPECT_EQ(substituteTypeArgs("java.util.Iterator<T0>", {"X"}),
            "java.util.Iterator<X>");
  EXPECT_EQ(substituteTypeArgs("T1", {"A", "B"}), "B");
}

TEST(TypeStrings, SubstituteMissingArgFallsBackToObject) {
  EXPECT_EQ(substituteTypeArgs("T0", {}), "java.lang.Object");
}

TEST(TypeStrings, SubstituteDoesNotTouchRealNames) {
  // "T0x" is a real identifier, not a placeholder.
  EXPECT_EQ(substituteTypeArgs("T0x", {"A"}), "T0x");
}

//===----------------------------------------------------------------------===//
// ClassPath
//===----------------------------------------------------------------------===//

TEST(ClassPathTest, StandardHasCoreClasses) {
  ClassPath CP = ClassPath::standard();
  EXPECT_NE(CP.find("java.lang.String"), nullptr);
  EXPECT_NE(CP.find("java.util.List"), nullptr);
  EXPECT_EQ(CP.find("com.nonexistent.Foo"), nullptr);
}

TEST(ClassPathTest, MethodReturnDirect) {
  ClassPath CP = ClassPath::standard();
  auto R = CP.methodReturn("java.lang.String", "length");
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, "int");
}

TEST(ClassPathTest, MethodReturnGenericSubstitution) {
  ClassPath CP = ClassPath::standard();
  auto R = CP.methodReturn("java.util.List<java.lang.Integer>", "get");
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, "java.lang.Integer");
}

TEST(ClassPathTest, MethodReturnThroughSuperChain) {
  // ArrayList inherits get from List and size from Collection.
  ClassPath CP = ClassPath::standard();
  auto Get = CP.methodReturn("java.util.ArrayList<java.lang.String>", "get");
  ASSERT_TRUE(Get.has_value());
  EXPECT_EQ(*Get, "java.lang.String");
  auto Size = CP.methodReturn("java.util.ArrayList<java.lang.String>",
                              "size");
  ASSERT_TRUE(Size.has_value());
  EXPECT_EQ(*Size, "int");
}

TEST(ClassPathTest, MapValueSubstitution) {
  ClassPath CP = ClassPath::standard();
  auto R = CP.methodReturn(
      "java.util.HashMap<java.lang.String,java.lang.Integer>", "get");
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, "java.lang.Integer");
}

TEST(ClassPathTest, FieldTypeLookup) {
  ClassPath CP = ClassPath::standard();
  auto R = CP.fieldType("java.lang.System", "out");
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, "java.io.PrintStream");
}

TEST(ClassPathTest, UnknownMethodIsNullopt) {
  ClassPath CP = ClassPath::standard();
  EXPECT_FALSE(CP.methodReturn("java.lang.String", "frobnicate").has_value());
  EXPECT_FALSE(CP.methodReturn("com.unknown.Type", "get").has_value());
}

//===----------------------------------------------------------------------===//
// Whole-program type annotation
//===----------------------------------------------------------------------===//

TEST(TypeChecker, LocalVariableUse) {
  Checked C("class A { void m() { int x = 1; int y = x; } }");
  EXPECT_EQ(C.typeOfName("x"), "int");
}

TEST(TypeChecker, ParameterUse) {
  Checked C("class A { void m(String s) { s.length(); } }");
  EXPECT_EQ(C.typeOfName("s"), "java.lang.String");
}

TEST(TypeChecker, ImportResolvesSimpleNames) {
  Checked C("import java.util.List;\nclass A { void m(List<Integer> xs) { "
            "xs.size(); } }");
  EXPECT_EQ(C.typeOfName("xs"), "java.util.List<java.lang.Integer>");
}

TEST(TypeChecker, MethodCallReturnType) {
  Checked C("class A { void m(String s) { int n = s.length(); } }");
  EXPECT_EQ(C.typeOfKind("MethodCallExpr"), "int");
}

TEST(TypeChecker, GenericListGet) {
  Checked C("import java.util.List;\nclass A { void m(List<String> xs) { "
            "String s = xs.get(0); } }");
  EXPECT_EQ(C.typeOfKind("MethodCallExpr"), "java.lang.String");
}

TEST(TypeChecker, StaticMathCall) {
  Checked C("class A { void m(int a, int b) { int x = Math.max(a, b); } }");
  EXPECT_EQ(C.typeOfKind("MethodCallExpr"), "int");
}

TEST(TypeChecker, SystemOutField) {
  Checked C("class A { void m() { System.out.println(1); } }");
  EXPECT_EQ(C.typeOfKind("FieldAccessExpr"), "java.io.PrintStream");
}

TEST(TypeChecker, FieldOfThisClass) {
  Checked C("class A { int count; void m() { int x = count; } }");
  EXPECT_EQ(C.typeOfName("count"), "int");
}

TEST(TypeChecker, ThisFieldAccess) {
  Checked C("class A { boolean done; void m() { this.done = true; } }");
  EXPECT_EQ(C.typeOfKind("FieldAccessExpr"), "boolean");
}

TEST(TypeChecker, LocalMethodCall) {
  Checked C("class A { String name() { return \"x\"; } void m() { String n "
            "= name(); } }");
  EXPECT_EQ(C.typeOfKind("MethodCallExpr"), "java.lang.String");
}

TEST(TypeChecker, ObjectCreation) {
  Checked C("import java.util.ArrayList;\nclass A { void m() { "
            "ArrayList<String> xs = new ArrayList<String>(); } }");
  EXPECT_EQ(C.typeOfKind("ObjectCreationExpr"),
            "java.util.ArrayList<java.lang.String>");
}

TEST(TypeChecker, ArrayAccessElementType) {
  Checked C("class A { void m(int[] data) { int x = data[0]; } }");
  EXPECT_EQ(C.typeOfKind("ArrayAccessExpr"), "int");
}

TEST(TypeChecker, ArrayLengthField) {
  Checked C("class A { void m(int[] data) { int n = data.length; } }");
  EXPECT_EQ(C.typeOfKind("FieldAccessExpr"), "int");
}

TEST(TypeChecker, StringConcatenation) {
  Checked C("class A { void m(String s, int n) { String r = s + n; } }");
  EXPECT_EQ(C.typeOfKind("BinaryExpr+"), "java.lang.String");
}

TEST(TypeChecker, NumericPromotion) {
  Checked C("class A { void m(int i, double d) { double r = i + d; } }");
  EXPECT_EQ(C.typeOfKind("BinaryExpr+"), "double");
}

TEST(TypeChecker, ComparisonIsBoolean) {
  Checked C("class A { void m(int i, int j) { boolean b = i < j; } }");
  EXPECT_EQ(C.typeOfKind("BinaryExpr<"), "boolean");
}

TEST(TypeChecker, CastType) {
  Checked C("class A { void m(Object o) { String s = (String) o; } }");
  EXPECT_EQ(C.typeOfKind("CastExpr"), "java.lang.String");
}

TEST(TypeChecker, ConditionalType) {
  Checked C("class A { void m(int a, int b) { int x = a > b ? a : b; } }");
  EXPECT_EQ(C.typeOfKind("ConditionalExpr"), "int");
}

TEST(TypeChecker, ForEachVariableType) {
  Checked C("import java.util.List;\nclass A { void m(List<String> xs) { "
            "for (String s : xs) { s.length(); } } }");
  EXPECT_EQ(C.typeOfName("s"), "java.lang.String");
}

TEST(TypeChecker, IntraFileClassReference) {
  Checked C("class Helper { int value() { return 1; } }\n"
            "class A { void m(Helper h) { int v = h.value(); } }");
  EXPECT_EQ(C.typeOfName("h"), "Helper");
  EXPECT_EQ(C.typeOfKind("MethodCallExpr"), "int");
}

TEST(TypeChecker, PackageQualifiesLocalClasses) {
  Checked C("package com.app;\nclass Helper {}\n"
            "class A { void m(Helper h) { Object o = h; } }");
  EXPECT_EQ(C.typeOfName("h"), "com.app.Helper");
}

TEST(TypeChecker, VoidCallsAreNotAnnotated) {
  Checked C("class A { void m() { System.out.println(1); } }");
  // println returns void; the call node must not carry a type.
  for (NodeId Id = 0; Id < C.T->size(); ++Id)
    if (C.SI.str(C.T->node(Id).Kind) == "MethodCallExpr" &&
        C.T->typeOf(Id).isValid()) {
      EXPECT_NE(C.SI.str(C.T->typeOf(Id)), "void");
    }
}

TEST(TypeChecker, UnknownTypesAreLeftUnannotated) {
  Checked C("class A { void m(com.mystery.Widget w) { w.spin(); } }");
  // `w` has a declared (unknown) type, so NameExpr is annotated with it,
  // but the call's return type is unknown and must stay unannotated.
  EXPECT_EQ(C.typeOfKind("MethodCallExpr"), "");
}

TEST(TypeChecker, LongLiteralSuffix) {
  Checked C("class A { void m() { long t = System.currentTimeMillis(); } }");
  EXPECT_EQ(C.typeOfKind("MethodCallExpr"), "long");
}

TEST(TypeChecker, ScopingBlocksShadowCorrectly) {
  Checked C("class A { void m() { { String x = \"a\"; } int x = 1; int y = "
            "x; } }");
  // The last NameExpr x must be int (inner String x is out of scope).
  std::string LastType;
  for (NodeId Id = 0; Id < C.T->size(); ++Id) {
    if (C.SI.str(C.T->node(Id).Kind) != "NameExpr")
      continue;
    auto Kids = C.T->children(Id);
    if (!Kids.empty() && C.SI.str(C.T->node(Kids[0]).Value) == "x" &&
        C.T->typeOf(Id).isValid())
      LastType = C.SI.str(C.T->typeOf(Id));
  }
  EXPECT_EQ(LastType, "int");
}

TEST(TypeChecker, AnnotationCountIsPositive) {
  Checked C("class A { int f(int a) { return a + 1; } }");
  EXPECT_GT(C.Annotated, 0u);
}

} // namespace
