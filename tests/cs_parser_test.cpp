//===- cs_parser_test.cpp - Unit tests for the MiniC# frontend -------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/csharp/CsParser.h"

#include <gtest/gtest.h>

using namespace pigeon;
using namespace pigeon::ast;

namespace {

std::string sexprOf(std::string_view Source) {
  StringInterner SI;
  lang::ParseResult R = cs::parse(Source, SI);
  EXPECT_TRUE(R.Tree.has_value());
  for (const lang::Diagnostic &D : R.Diags)
    ADD_FAILURE() << "diagnostic: " << D.str() << " in: " << Source;
  return R.Tree ? R.Tree->sexpr() : "";
}

std::string methodSexpr(std::string_view Body) {
  std::string Src =
      "class A { void M() { " + std::string(Body) + " } }";
  return sexprOf(Src);
}

TEST(CsParser, EmptyClass) {
  EXPECT_EQ(sexprOf("class A {}"),
            "(CompilationUnit (ClassDeclaration (Identifier A)))");
}

TEST(CsParser, NamespaceAndUsing) {
  EXPECT_EQ(sexprOf("using System;\nnamespace App { class A {} }"),
            "(CompilationUnit (UsingDirective (Name System)) "
            "(NamespaceDeclaration (Name App) (ClassDeclaration "
            "(Identifier A))))");
}

TEST(CsParser, FieldWithInitializer) {
  EXPECT_EQ(sexprOf("class A { private bool done = false; }"),
            "(CompilationUnit (ClassDeclaration (Identifier A) "
            "(FieldDeclaration (VariableDeclaration (PredefinedType bool) "
            "(VariableDeclarator (Identifier done) (EqualsValueClause "
            "(FalseLiteral false)))))))");
}

TEST(CsParser, AutoProperty) {
  EXPECT_EQ(sexprOf("class A { public int Count { get; set; } }"),
            "(CompilationUnit (ClassDeclaration (Identifier A) "
            "(PropertyDeclaration (PredefinedType int) (Identifier Count) "
            "(AccessorList (GetAccessor) (SetAccessor)))))");
}

TEST(CsParser, MethodWithParams) {
  EXPECT_EQ(sexprOf("class A { int Add(int a, int b) { return a; } }"),
            "(CompilationUnit (ClassDeclaration (Identifier A) "
            "(MethodDeclaration (PredefinedType int) (Identifier Add) "
            "(ParameterList (Parameter (PredefinedType int) (Identifier a)) "
            "(Parameter (PredefinedType int) (Identifier b))) (Block "
            "(ReturnStatement (IdentifierName (Identifier a)))))))");
}

TEST(CsParser, RoslynInvocationShape) {
  // `items.Add(x)` must nest Invocation(MemberAccess(...), ArgumentList).
  EXPECT_NE(methodSexpr("items.Add(x);")
                .find("(InvocationExpression (MemberAccessExpression "
                      "(IdentifierName (Identifier items)) (IdentifierName "
                      "(Identifier Add))) (ArgumentList (Argument "
                      "(IdentifierName (Identifier x)))))"),
            std::string::npos);
}

TEST(CsParser, VarDeclaration) {
  EXPECT_NE(methodSexpr("var total = 0;")
                .find("(VariableDeclaration (PredefinedType var) "
                      "(VariableDeclarator (Identifier total) "
                      "(EqualsValueClause (NumericLiteral 0))))"),
            std::string::npos);
}

TEST(CsParser, GenericTypeDeclaration) {
  EXPECT_NE(methodSexpr("List<int> xs = new List<int>();")
                .find("(GenericName (Identifier List) (TypeArgumentList "
                      "(PredefinedType int)))"),
            std::string::npos);
}

TEST(CsParser, ForEach) {
  EXPECT_NE(methodSexpr("foreach (var item in items) { Use(item); }")
                .find("(ForEachStatement (PredefinedType var) (Identifier "
                      "item) (IdentifierName (Identifier items))"),
            std::string::npos);
}

TEST(CsParser, WhileNotDone) {
  std::string S = methodSexpr("bool done = false; while (!done) { done = "
                              "true; }");
  EXPECT_NE(S.find("(WhileStatement (PrefixUnaryExpression! (IdentifierName "
                   "(Identifier done)))"),
            std::string::npos);
  EXPECT_NE(S.find("(AssignmentExpression= (IdentifierName (Identifier "
                   "done)) (TrueLiteral true))"),
            std::string::npos);
}

TEST(CsParser, ConditionalAndBinary) {
  EXPECT_NE(methodSexpr("int m = a > b ? a : b;")
                .find("(ConditionalExpression (BinaryExpression> "
                      "(IdentifierName (Identifier a)) (IdentifierName "
                      "(Identifier b)))"),
            std::string::npos);
}

TEST(CsParser, StringInterpolationFreeConcat) {
  EXPECT_NE(methodSexpr("string s = \"a\" + name;")
                .find("(BinaryExpression+ (StringLiteral a) (IdentifierName "
                      "(Identifier name)))"),
            std::string::npos);
}

TEST(CsParser, ElementAccess) {
  EXPECT_NE(methodSexpr("int v = data[i];")
                .find("(ElementAccessExpression (IdentifierName (Identifier "
                      "data)) (BracketedArgumentList (Argument "
                      "(IdentifierName (Identifier i)))))"),
            std::string::npos);
}

TEST(CsParser, TryCatch) {
  std::string S = methodSexpr(
      "try { F(); } catch (Exception e) { G(e); } finally { H(); }");
  EXPECT_NE(S.find("(CatchClause (CatchDeclaration (IdentifierName "
                   "(Identifier Exception)) (Identifier e))"),
            std::string::npos);
  EXPECT_NE(S.find("(FinallyClause"), std::string::npos);
}

TEST(CsParser, Constructor) {
  EXPECT_NE(sexprOf("class P { int x; P(int x) { this.x = x; } }")
                .find("(ConstructorDeclaration (Identifier P)"),
            std::string::npos);
}

TEST(CsParser, IsAndAsExpressions) {
  EXPECT_NE(methodSexpr("bool b = o is string;")
                .find("(IsExpression (IdentifierName (Identifier o)) "
                      "(PredefinedType string))"),
            std::string::npos);
  EXPECT_NE(methodSexpr("string s = o as string;")
                .find("(AsExpression (IdentifierName (Identifier o)) "
                      "(PredefinedType string))"),
            std::string::npos);
}

TEST(CsParser, CastExpression) {
  EXPECT_NE(methodSexpr("int x = (int) y;")
                .find("(CastExpression (PredefinedType int) (IdentifierName "
                      "(Identifier y)))"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Elements
//===----------------------------------------------------------------------===//

TEST(CsParserElements, PropertyUsesResolve) {
  StringInterner SI;
  lang::ParseResult R = cs::parse(
      "class A { public int Count { get; set; } void M() { Count = 1; } }",
      SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  for (ElementId E = 0; E < T.elements().size(); ++E) {
    if (SI.str(T.element(E).Name) != "Count")
      continue;
    EXPECT_EQ(T.element(E).Kind, ElementKind::Property);
    EXPECT_EQ(T.occurrences(E).size(), 2u);
  }
}

TEST(CsParserElements, ThisFieldResolves) {
  StringInterner SI;
  lang::ParseResult R =
      cs::parse("class A { int x; void Set(int x) { this.x = x; } }", SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  for (ElementId E = 0; E < T.elements().size(); ++E) {
    const ElementInfo &Info = T.element(E);
    if (SI.str(Info.Name) == "x" && Info.Kind == ElementKind::Field) {
      EXPECT_EQ(T.occurrences(E).size(), 2u);
    }
  }
}

TEST(CsParserElements, MethodCallLinksViaPrescan) {
  StringInterner SI;
  lang::ParseResult R = cs::parse(
      "class A { void M() { Helper(); } void Helper() {} }", SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  for (ElementId E = 0; E < T.elements().size(); ++E)
    if (SI.str(T.element(E).Name) == "Helper") {
      EXPECT_EQ(T.occurrences(E).size(), 2u);
    }
}

TEST(CsParserElements, LocalsArePredictable) {
  StringInterner SI;
  lang::ParseResult R =
      cs::parse("class A { void M() { var total = 0; total += 1; } }", SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  for (ElementId E = 0; E < T.elements().size(); ++E) {
    if (SI.str(T.element(E).Name) != "total")
      continue;
    EXPECT_EQ(T.element(E).Kind, ElementKind::LocalVar);
    EXPECT_TRUE(T.element(E).Predictable);
    EXPECT_EQ(T.occurrences(E).size(), 2u);
  }
}

//===----------------------------------------------------------------------===//
// Errors
//===----------------------------------------------------------------------===//

TEST(CsParserErrors, MissingSemicolonDiagnosed) {
  StringInterner SI;
  lang::ParseResult R =
      cs::parse("class A { void M() { int x = 1 } }", SI);
  EXPECT_FALSE(R.Diags.empty());
}

TEST(CsParserErrors, GarbageTerminates) {
  StringInterner SI;
  lang::ParseResult R = cs::parse("$$$ class ((", SI);
  ASSERT_TRUE(R.Tree.has_value());
  EXPECT_FALSE(R.Diags.empty());
}

TEST(CsParserErrors, OperatorDriftRaisesDiagnosticNotUB) {
  // `a - - - b` desynchronizes the binary-chain lookahead from the unary
  // parse (see the JS twin test); the guard must be an always-on
  // diagnostic, not a Release-stripped assert.
  StringInterner SI;
  lang::ParseResult R =
      cs::parse("class C { void M() { int x = a - - - b; } }", SI);
  ASSERT_TRUE(R.Tree.has_value());
  bool SawDrift = false;
  for (const lang::Diagnostic &D : R.Diags)
    SawDrift |= D.Message.find("operator drift") != std::string::npos;
  EXPECT_TRUE(SawDrift);
}

} // namespace
