//===- baselines_test.cpp - Unit tests for the baseline systems ------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"

#include "lang/java/JavaParser.h"
#include "lang/js/JsParser.h"

#include <gtest/gtest.h>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::baselines;
using namespace pigeon::paths;

namespace {

//===----------------------------------------------------------------------===//
// Single-statement filtering (UnuglifyJS-style relations)
//===----------------------------------------------------------------------===//

TEST(IntraStatement, KeepsWithinStatementPairs) {
  StringInterner SI;
  lang::ParseResult R = js::parse("var item = array[i];", SI);
  ASSERT_TRUE(R.ok());
  PathTable Table;
  ExtractionConfig Config;
  Config.IncludeSemiPaths = false;
  auto All = extractPathContexts(*R.Tree, Config, Table);
  auto Intra = filterIntraStatement(*R.Tree, All);
  // item/array/i all live in one Var statement: every pair survives.
  EXPECT_EQ(Intra.size(), All.size());
  EXPECT_GT(Intra.size(), 0u);
}

TEST(IntraStatement, DropsCrossStatementPairs) {
  StringInterner SI;
  // The two `d`s of Fig. 1a live in different statements (across While).
  lang::ParseResult R =
      js::parse("while (!d) { if (c()) { d = true; } }", SI);
  ASSERT_TRUE(R.ok());
  PathTable Table;
  ExtractionConfig Config;
  Config.MaxLength = 12;
  Config.MaxWidth = 6;
  Config.IncludeSemiPaths = false;
  auto Intra = filterIntraStatement(
      *R.Tree, extractPathContexts(*R.Tree, Config, Table));
  for (const PathContext &Ctx : Intra) {
    // No surviving context may connect the two occurrences of d.
    bool BothD = SI.str(R.Tree->node(Ctx.Start).Value) == "d" &&
                 SI.str(R.Tree->node(Ctx.End).Value) == "d";
    EXPECT_FALSE(BothD);
  }
}

TEST(IntraStatement, Fig3PairBecomesIndistinguishable) {
  // With intra-statement relations only, Fig. 3a and Fig. 3b give `d`
  // identical context multisets — the paper's motivating failure.
  StringInterner SI;
  lang::ParseResult A = js::parse("var d = false; while (!d) { "
                                  "doSomething(); if (someCondition()) { d "
                                  "= true; } }",
                                  SI);
  lang::ParseResult B = js::parse("someCondition(); doSomething(); var d = "
                                  "false; d = true;",
                                  SI);
  ASSERT_TRUE(A.ok() && B.ok());
  PathTable Table;
  ExtractionConfig Config;
  Config.MaxLength = 12;
  Config.MaxWidth = 6;
  Config.IncludeSemiPaths = false;
  auto PathsOfD = [&](const Tree &T) {
    std::multiset<std::string> Set;
    auto Intra =
        filterIntraStatement(T, extractPathContexts(T, Config, Table));
    for (const PathContext &Ctx : Intra) {
      std::string SV(SI.str(T.node(Ctx.Start).Value));
      std::string EV(SI.str(T.node(Ctx.End).Value));
      if (SV == "d")
        Set.insert(Table.render(Ctx.Path, SI) + ">" + EV);
      else if (EV == "d")
        Set.insert(SV + ">" + Table.render(Ctx.Path, SI));
    }
    return Set;
  };
  EXPECT_EQ(PathsOfD(*A.Tree), PathsOfD(*B.Tree))
      << "single-statement relations must conflate Fig. 3a and 3b";
}

TEST(IntraStatement, SemiPathsRespectBoundaries) {
  StringInterner SI;
  lang::ParseResult R = js::parse("while (x) { f(y); }", SI);
  ASSERT_TRUE(R.ok());
  PathTable Table;
  ExtractionConfig Config;
  auto Intra = filterIntraStatement(
      *R.Tree, extractPathContexts(*R.Tree, Config, Table));
  for (const PathContext &Ctx : Intra) {
    if (!Ctx.Semi)
      continue;
    EXPECT_FALSE(isBoundaryKind(
        SI.str(R.Tree->node(Ctx.End).Kind)))
        << "semi-paths must not end at control boundaries";
  }
}

TEST(IntraStatement, BoundaryKindTable) {
  EXPECT_TRUE(isBoundaryKind("While"));
  EXPECT_TRUE(isBoundaryKind("BlockStmt"));
  EXPECT_TRUE(isBoundaryKind("FunctionDef"));
  EXPECT_TRUE(isBoundaryKind("ForEachStatement"));
  EXPECT_FALSE(isBoundaryKind("Assign="));
  EXPECT_FALSE(isBoundaryKind("Call"));
}

//===----------------------------------------------------------------------===//
// N-gram contexts
//===----------------------------------------------------------------------===//

TEST(Ngrams, ConnectsTokensWithinWindow) {
  StringInterner SI;
  lang::ParseResult R = js::parse("var a = b + c;", SI);
  ASSERT_TRUE(R.ok());
  PathTable Table;
  auto Contexts = ngramContexts(*R.Tree, /*N=*/4, Table);
  // Terminals: a, b, c — per anchor: (a,b,1) (a,c,2) (b,c,1).
  ASSERT_EQ(Contexts.size(), 3u);
  EXPECT_EQ(Table.render(Contexts[0].Path, SI), "ngram:1");
  EXPECT_EQ(Table.render(Contexts[1].Path, SI), "ngram:2");
  EXPECT_EQ(Table.render(Contexts[2].Path, SI), "ngram:1");
}

TEST(Ngrams, WindowLimitsDistance) {
  StringInterner SI;
  lang::ParseResult R = js::parse("f(a, b, c, d, e);", SI);
  ASSERT_TRUE(R.ok());
  PathTable Table;
  auto N2 = ngramContexts(*R.Tree, 2, Table);
  auto N4 = ngramContexts(*R.Tree, 4, Table);
  EXPECT_LT(N2.size(), N4.size());
  for (const PathContext &Ctx : N2)
    EXPECT_EQ(Table.render(Ctx.Path, SI), "ngram:1");
}

//===----------------------------------------------------------------------===//
// Rule-based Java namer
//===----------------------------------------------------------------------===//

std::unordered_map<std::string, std::string>
rulePredictions(std::string_view Source, StringInterner &SI) {
  lang::ParseResult R = java::parse(Source, SI);
  EXPECT_TRUE(R.ok());
  auto ById = ruleBasedJavaNames(*R.Tree);
  std::unordered_map<std::string, std::string> ByName;
  for (const auto &[E, Predicted] : ById)
    ByName[std::string(SI.str(R.Tree->element(E).Name))] = Predicted;
  return ByName;
}

TEST(RuleBased, ForLoopIndexIsI) {
  StringInterner SI;
  auto P = rulePredictions(
      "class A { void m(int[] xs) { for (int q = 0; q < xs.length; q++) { "
      "f(xs[q]); } } }",
      SI);
  EXPECT_EQ(P["q"], "i");
}

TEST(RuleBased, CatchParameterIsE) {
  StringInterner SI;
  auto P = rulePredictions("class A { void m() { try { f(); } catch "
                           "(Exception problem) { g(problem); } } }",
                           SI);
  EXPECT_EQ(P["problem"], "e");
}

TEST(RuleBased, SetterParamNamedAfterField) {
  StringInterner SI;
  auto P = rulePredictions(
      "class A { int size; void setSize(int v) { this.size = v; } }", SI);
  EXPECT_EQ(P["v"], "size");
}

TEST(RuleBased, TypeBasedFallback) {
  StringInterner SI;
  auto P = rulePredictions(
      "class A { String m(HttpClient h) { return h.toString(); } }", SI);
  EXPECT_EQ(P["h"], "client") << "HttpClient -> client (last sub-token)";
}

TEST(RuleBased, BooleanFallbackIsFlag) {
  StringInterner SI;
  auto P = rulePredictions("class A { void m(boolean q) { f(q); } }", SI);
  EXPECT_EQ(P["q"], "flag");
}

TEST(RuleBased, GenericTypeUsesBaseName) {
  StringInterner SI;
  auto P = rulePredictions(
      "import java.util.List;\nclass A { void m(List<Integer> q) { f(q); } "
      "}",
      SI);
  EXPECT_EQ(P["q"], "list");
}

//===----------------------------------------------------------------------===//
// Sub-token method namer
//===----------------------------------------------------------------------===//

TEST(SubtokenNamer, LearnsBodyVocabularyAssociations) {
  SubtokenMethodNamer Namer;
  Namer.train({
      {"countItems", {"count", "items", "item", "target"}},
      {"countItems", {"counter", "items", "item"}},
      {"sumValues", {"sum", "values", "index"}},
      {"sumValues", {"total", "values", "index"}},
  });
  EXPECT_EQ(Namer.predict({"count", "items", "item"}), "countItems");
  EXPECT_EQ(Namer.predict({"sum", "values"}), "sumValues");
}

TEST(SubtokenNamer, SplitsCompoundIdentifiers) {
  SubtokenMethodNamer Namer;
  Namer.train({{"getTotal", {"totalCount", "result"}},
               {"openFile", {"fileName", "reader"}}});
  EXPECT_EQ(Namer.predict({"total_count"}), "getTotal");
}

TEST(SubtokenNamer, UntrainedReturnsEmpty) {
  SubtokenMethodNamer Namer;
  EXPECT_EQ(Namer.predict({"anything"}), "");
}

TEST(SubtokenNamer, MethodExamplesFromTree) {
  StringInterner SI;
  lang::ParseResult R = js::parse(
      "function countItems(items) { var count = 0; return count; }", SI);
  ASSERT_TRUE(R.ok());
  auto Examples = methodExamples(*R.Tree);
  ASSERT_EQ(Examples.size(), 1u);
  EXPECT_EQ(Examples[0].Name, "countItems");
  // Body identifiers include params and locals but not the name itself.
  bool SawItems = false, SawName = false;
  for (const std::string &Ident : Examples[0].BodyIdentifiers) {
    SawItems |= Ident == "items";
    SawName |= Ident == "countItems";
  }
  EXPECT_TRUE(SawItems);
  EXPECT_FALSE(SawName);
}

TEST(SubtokenNamer, JavaMethodExamples) {
  StringInterner SI;
  lang::ParseResult R = java::parse(
      "class A { int getCount() { return count; } int count; }", SI);
  ASSERT_TRUE(R.ok());
  auto Examples = methodExamples(*R.Tree);
  ASSERT_EQ(Examples.size(), 1u);
  EXPECT_EQ(Examples[0].Name, "getCount");
}

} // namespace
