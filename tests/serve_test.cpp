//===- serve_test.cpp - Unit tests for the resident prediction service -----===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Covers the pigeon.serve.v1 protocol end to end: valid requests, every
// structured error path (malformed JSON, unknown/mismatched lang and
// task, oversized source, bad field types, deadline exceeded, queue
// full, shutting down), batching determinism (a batched response is
// byte-identical to a sequential one, and both match the one-shot
// predict route exactly), and the stream/fd front-ends' EOF and
// stop-flag shutdown with full response flush.
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"

#include "serve/SlowLog.h"

#include "core/Experiments.h"
#include "lang/js/JsParser.h"
#include "support/EventLog.h"
#include "support/Json.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <optional>
#include <sstream>
#include <thread>

#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace pigeon;
using namespace pigeon::core;
using namespace pigeon::serve;
using pigeon::lang::Language;

namespace {

/// Trains a small JS variable-name bundle and round-trips it through
/// save/load so every test serves exactly what `pigeon serve` would: a
/// bundle restored from bytes.
std::string trainedBundleBytes() {
  static const std::string Bytes = [] {
    ModelBundle Bundle;
    Bundle.Lang = Language::JavaScript;
    Bundle.Interner = std::make_unique<StringInterner>();
    Bundle.Extraction =
        tunedExtraction(Language::JavaScript, Task::VariableNames);
    Bundle.TaskKind = Task::VariableNames;

    datagen::CorpusSpec Spec =
        datagen::defaultSpec(Language::JavaScript, /*Seed=*/5);
    Spec.NumProjects = 6;
    crf::ElementSelector Selector = selectorFor(Task::VariableNames);
    std::vector<crf::CrfGraph> Graphs;
    std::vector<std::optional<ast::Tree>> Keep;
    for (const datagen::SourceFile &File : datagen::generateCorpus(Spec)) {
      lang::ParseResult R = js::parse(File.Text, *Bundle.Interner);
      EXPECT_TRUE(R.ok());
      Keep.push_back(std::move(R.Tree));
      auto Contexts = paths::extractPathContexts(
          *Keep.back(), Bundle.Extraction, Bundle.Table);
      Graphs.push_back(crf::buildGraph(*Keep.back(), Contexts, Selector));
    }
    Bundle.Model.train(Graphs);
    std::stringstream Buffer;
    saveModel(Buffer, Bundle);
    return Buffer.str();
  }();
  return Bytes;
}

std::unique_ptr<ModelBundle> loadBundle() {
  std::stringstream Buffer(trainedBundleBytes());
  auto Bundle = loadModel(Buffer);
  EXPECT_NE(Bundle, nullptr);
  return Bundle;
}

const char *MinifiedFlag =
    "function f() { var a = false; while (!a) { if (check()) { a = true; } "
    "} return a; }";

const char *MinifiedLoop =
    "function g(x, y) { var q = 0; q += x; q += y; return q; }";

std::string jsonEscape(const std::string &S) {
  return telemetry::jsonString(S);
}

std::string requestLine(const std::string &Source,
                        const std::string &Extra = "") {
  return "{\"lang\":\"js\",\"task\":\"vars\",\"source\":" +
         jsonEscape(Source) + Extra + "}";
}

json::Value parsed(const std::string &Line) {
  std::string Error;
  std::optional<json::Value> Doc = json::parse(Line, &Error);
  EXPECT_TRUE(Doc.has_value()) << Error << " in: " << Line;
  return Doc ? *Doc : json::Value();
}

std::string errorCode(const json::Value &Doc) {
  const json::Value *Error = Doc.find("error");
  if (!Error)
    return "";
  const json::Value *Code = Error->find("code");
  return Code ? Code->strOr("") : "";
}

//===----------------------------------------------------------------------===//
// Happy path
//===----------------------------------------------------------------------===//

TEST(Serve, ValidRequestReturnsPredictions) {
  Service S(loadBundle());
  json::Value Doc = parsed(
      S.handleOne(requestLine(MinifiedFlag, ",\"id\":42,\"k\":2")));
  EXPECT_EQ(Doc.find("schema")->strOr(""), "pigeon.serve.v1");
  EXPECT_EQ(Doc.find("id")->numberOr(-1), 42.0);
  ASSERT_TRUE(Doc.find("ok")->boolean());
  const auto &Preds = Doc.find("predictions")->array();
  ASSERT_FALSE(Preds.empty());
  for (const json::Value &P : Preds) {
    EXPECT_TRUE(P.find("element")->isString());
    EXPECT_TRUE(P.find("kind")->isString());
    EXPECT_LE(P.find("candidates")->array().size(), 2u);
  }
}

TEST(Serve, TaskDefaultsToBundleTask) {
  Service S(loadBundle());
  json::Value Doc = parsed(S.handleOne(
      "{\"lang\":\"js\",\"source\":" + jsonEscape(MinifiedFlag) + "}"));
  EXPECT_TRUE(Doc.find("ok")->boolean());
}

/// The acceptance pin: a served response must carry exactly the labels
/// and scores the one-shot route (parse straight into the bundle
/// interner, extract, predict, topK) produces on a freshly loaded bundle
/// of the same bytes. This is what the private-interner remap buys.
TEST(Serve, ResponseMatchesOneShotPredictionExactly) {
  std::unique_ptr<ModelBundle> Direct = loadBundle();
  lang::ParseResult R = js::parse(MinifiedFlag, *Direct->Interner);
  ASSERT_TRUE(R.Tree.has_value());
  auto Contexts = paths::extractPathContexts(*R.Tree, Direct->Extraction,
                                             Direct->Table);
  crf::CrfGraph G =
      crf::buildGraph(*R.Tree, Contexts, selectorFor(Direct->TaskKind));
  std::vector<Symbol> Pred = Direct->Model.predict(G);

  Service S(loadBundle());
  json::Value Doc = parsed(S.handleOne(requestLine(MinifiedFlag)));
  ASSERT_TRUE(Doc.find("ok")->boolean());
  const auto &Preds = Doc.find("predictions")->array();
  ASSERT_EQ(Preds.size(), G.Unknowns.size());
  for (size_t I = 0; I < G.Unknowns.size(); ++I) {
    uint32_t N = G.Unknowns[I];
    EXPECT_EQ(Preds[I].find("element")->strOr(""),
              Direct->Interner->str(G.Nodes[N].Gold));
    auto Top = Direct->Model.topK(G, N, Pred, 3);
    const auto &Cands = Preds[I].find("candidates")->array();
    ASSERT_EQ(Cands.size(), Top.size());
    for (size_t C = 0; C < Top.size(); ++C) {
      EXPECT_EQ(Cands[C].find("label")->strOr(""),
                Direct->Interner->str(Top[C].first));
      // Compare through the same rendering the service used, so this is
      // byte-equality of the wire format, not approximate equality.
      EXPECT_EQ(telemetry::jsonNumber(Cands[C].find("score")->number()),
                telemetry::jsonNumber(Top[C].second));
    }
  }
}

/// Batched processing must not change any response byte: one service
/// handles four requests in a single micro-batch, the other handles the
/// same four sequentially (batch size 1 by construction of handleOne),
/// both freshly loaded from the same bundle bytes.
TEST(Serve, BatchedResponsesByteIdenticalToSequential) {
  std::vector<std::string> Lines = {
      requestLine(MinifiedFlag, ",\"id\":\"a\""),
      requestLine(MinifiedLoop, ",\"id\":\"b\""),
      requestLine(MinifiedFlag, ",\"id\":\"c\",\"k\":1"),
      requestLine(MinifiedLoop, ",\"id\":\"d\",\"explain\":true"),
  };

  Service Sequential(loadBundle());
  std::vector<std::string> SequentialResponses;
  for (const std::string &Line : Lines)
    SequentialResponses.push_back(Sequential.handleOne(Line));

  ServeConfig Batched;
  Batched.MaxBatch = Lines.size();
  Service S(loadBundle(), Batched);
  std::vector<std::string> BatchedResponses(Lines.size());
  S.pause(); // Everything queues, then lands in one batch.
  std::mutex M;
  for (size_t I = 0; I < Lines.size(); ++I)
    S.submit(Lines[I], [&BatchedResponses, &M, I](std::string Response) {
      std::lock_guard<std::mutex> L(M);
      BatchedResponses[I] = std::move(Response);
    });
  EXPECT_EQ(S.queueDepth(), Lines.size());
  S.resume();
  S.drain();

  EXPECT_EQ(BatchedResponses, SequentialResponses);
}

TEST(Serve, ExplainTotalsMatchCandidateScores) {
  Service S(loadBundle());
  json::Value Doc = parsed(
      S.handleOne(requestLine(MinifiedFlag, ",\"explain\":true")));
  ASSERT_TRUE(Doc.find("ok")->boolean());
  for (const json::Value &P : Doc.find("predictions")->array()) {
    const json::Value *Explain = P.find("explain");
    if (!Explain)
      continue; // No valid prediction for this element.
    double Total = Explain->find("total")->number();
    // explain() decomposes the score of the predicted label; that label
    // is one of the candidates, so its exact score must appear there.
    bool Found = false;
    for (const json::Value &C : P.find("candidates")->array())
      Found |= telemetry::jsonNumber(C.find("score")->number()) ==
               telemetry::jsonNumber(Total);
    EXPECT_TRUE(Found);
    EXPECT_LE(Explain->find("paths")->array().size(), 5u);
  }
}

//===----------------------------------------------------------------------===//
// Protocol error paths
//===----------------------------------------------------------------------===//

TEST(Serve, MalformedJsonIsIsolated) {
  Service S(loadBundle());
  json::Value Bad = parsed(S.handleOne("this is not json"));
  EXPECT_FALSE(Bad.find("ok")->boolean());
  EXPECT_EQ(errorCode(Bad), "bad_request");
  // The service survives and keeps answering.
  json::Value Good = parsed(S.handleOne(requestLine(MinifiedFlag)));
  EXPECT_TRUE(Good.find("ok")->boolean());
}

TEST(Serve, NonObjectAndBadFieldsAreBadRequests) {
  Service S(loadBundle());
  EXPECT_EQ(errorCode(parsed(S.handleOne("[1,2,3]"))), "bad_request");
  EXPECT_EQ(errorCode(parsed(S.handleOne("{\"source\":\"x\"}"))),
            "bad_request"); // Missing lang.
  EXPECT_EQ(errorCode(parsed(S.handleOne("{\"lang\":\"js\"}"))),
            "bad_request"); // Missing source.
  EXPECT_EQ(errorCode(parsed(S.handleOne(
                requestLine(MinifiedFlag, ",\"k\":0")))),
            "bad_request");
  EXPECT_EQ(errorCode(parsed(S.handleOne(
                requestLine(MinifiedFlag, ",\"k\":\"three\"")))),
            "bad_request");
  EXPECT_EQ(errorCode(parsed(S.handleOne(
                requestLine(MinifiedFlag, ",\"explain\":\"yes\"")))),
            "bad_request");
  EXPECT_EQ(errorCode(parsed(S.handleOne(
                requestLine(MinifiedFlag, ",\"id\":{\"no\":1}")))),
            "bad_request");
  EXPECT_EQ(errorCode(parsed(S.handleOne(
                requestLine(MinifiedFlag, ",\"deadline_ms\":-1")))),
            "bad_request");
}

TEST(Serve, UnknownAndMismatchedLang) {
  Service S(loadBundle());
  EXPECT_EQ(errorCode(parsed(S.handleOne(
                "{\"lang\":\"golang\",\"source\":\"x\"}"))),
            "unknown_lang");
  EXPECT_EQ(errorCode(parsed(S.handleOne(
                "{\"lang\":\"java\",\"source\":\"class C {}\"}"))),
            "lang_mismatch");
}

TEST(Serve, UnknownTaskAndTaskMismatch) {
  Service S(loadBundle());
  std::string Unknown = S.handleOne(
      "{\"lang\":\"js\",\"task\":\"frobnicate\",\"source\":\"var x;\"}");
  EXPECT_EQ(errorCode(parsed(Unknown)), "unknown_task");
  std::string Mismatch = S.handleOne(
      "{\"lang\":\"js\",\"task\":\"methods\",\"source\":\"var x;\"}");
  EXPECT_EQ(errorCode(parsed(Mismatch)), "task_mismatch");
}

TEST(Serve, OversizedSourceRejected) {
  ServeConfig Config;
  Config.MaxSourceBytes = 64;
  Service S(loadBundle(), Config);
  std::string Big(100, 'x');
  json::Value Doc = parsed(S.handleOne(requestLine(Big)));
  EXPECT_EQ(errorCode(Doc), "source_too_large");
}

TEST(Serve, DeadlineExceededWhileQueued) {
  Service S(loadBundle());
  S.pause();
  std::promise<std::string> Result;
  std::future<std::string> F = Result.get_future();
  S.submit(requestLine(MinifiedFlag, ",\"id\":7,\"deadline_ms\":5"),
           [&Result](std::string R) { Result.set_value(std::move(R)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  S.resume();
  json::Value Doc = parsed(F.get());
  EXPECT_EQ(errorCode(Doc), "deadline_exceeded");
  EXPECT_EQ(Doc.find("id")->numberOr(-1), 7.0); // Id still echoed.
}

TEST(Serve, QueueFullAnswersOverloadedImmediately) {
  ServeConfig Config;
  Config.QueueCapacity = 2;
  Service S(loadBundle(), Config);
  S.pause();
  std::vector<std::future<std::string>> Queued;
  for (int I = 0; I < 2; ++I) {
    auto P = std::make_shared<std::promise<std::string>>();
    Queued.push_back(P->get_future());
    S.submit(requestLine(MinifiedFlag),
             [P](std::string R) { P->set_value(std::move(R)); });
  }
  // Third request: rejected synchronously, while the batcher is paused.
  std::string Rejected;
  S.submit(requestLine(MinifiedFlag),
           [&Rejected](std::string R) { Rejected = std::move(R); });
  ASSERT_FALSE(Rejected.empty());
  EXPECT_EQ(errorCode(parsed(Rejected)), "overloaded");

  S.resume();
  for (auto &F : Queued)
    EXPECT_TRUE(parsed(F.get()).find("ok")->boolean());
}

TEST(Serve, SubmitAfterShutdownAnswersShuttingDown) {
  Service S(loadBundle());
  EXPECT_TRUE(
      parsed(S.handleOne(requestLine(MinifiedFlag))).find("ok")->boolean());
  S.shutdown();
  std::string Response;
  S.submit(requestLine(MinifiedFlag),
           [&Response](std::string R) { Response = std::move(R); });
  EXPECT_EQ(errorCode(parsed(Response)), "shutting_down");
}

TEST(Serve, ParseFailureIsAStructuredError) {
  Service S(loadBundle());
  // The JS frontend produces no tree for input this broken.
  json::Value Doc =
      parsed(S.handleOne("{\"lang\":\"js\",\"source\":\")(}{\"}"));
  std::string Code = errorCode(Doc);
  // Either outcome is protocol-conforming as the frontends evolve: a
  // structured parse error, or a best-effort tree with no predictions.
  if (!Code.empty())
    EXPECT_EQ(Code, "parse_failed");
  else
    EXPECT_TRUE(Doc.find("ok")->boolean());
  // Still alive.
  EXPECT_TRUE(
      parsed(S.handleOne(requestLine(MinifiedFlag))).find("ok")->boolean());
}

TEST(Serve, DrainWaitsOutTheStragglerWindow) {
  // Regression: while the batcher sits in its FlushMicros straggler
  // wait, accepted requests live in its local batch and the queue is
  // empty — drain() must still treat the service as busy. It used to
  // return through that window, letting stream front-ends destroy the
  // write path with a response still pending.
  ServeConfig Config;
  Config.FlushMicros = 200000; // 200 ms: a window drain() would fall into.
  Service S(loadBundle(), Config);
  std::atomic<bool> Answered{false};
  S.submit(requestLine(MinifiedFlag),
           [&Answered](std::string) { Answered = true; });
  // Let the batcher pick the request up and enter the straggler wait.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  S.drain();
  EXPECT_TRUE(Answered.load());
}

//===----------------------------------------------------------------------===//
// Front-ends and shutdown
//===----------------------------------------------------------------------===//

TEST(Serve, StreamFrontEndAnswersEveryLineThenEofCleanly) {
  Service S(loadBundle());
  std::istringstream In(requestLine(MinifiedFlag, ",\"id\":1") + "\n" +
                        "garbage\n" + requestLine(MinifiedLoop, ",\"id\":3") +
                        "\n");
  std::ostringstream Out;
  EXPECT_EQ(serveStream(S, In, Out), 0);
  std::istringstream Lines(Out.str());
  std::string Line;
  size_t Count = 0, Ok = 0, Errors = 0;
  while (std::getline(Lines, Line)) {
    ++Count;
    json::Value Doc = parsed(Line);
    (Doc.find("ok")->boolean() ? Ok : Errors) += 1;
  }
  EXPECT_EQ(Count, 3u);
  EXPECT_EQ(Ok, 2u);
  EXPECT_EQ(Errors, 1u);
}

TEST(Serve, FdLoopDrainsOnEof) {
  int InPipe[2], OutPipe[2];
  ASSERT_EQ(::pipe(InPipe), 0);
  ASSERT_EQ(::pipe(OutPipe), 0);
  Service S(loadBundle());
  std::atomic<bool> Stop{false};
  std::thread Loop([&] { serveFdLoop(S, InPipe[0], OutPipe[1], Stop); });
  std::string Line = requestLine(MinifiedFlag, ",\"id\":9") + "\n";
  ASSERT_EQ(::write(InPipe[1], Line.data(), Line.size()),
            static_cast<ssize_t>(Line.size()));
  ::close(InPipe[1]); // EOF: the loop must drain, flush, and return.
  Loop.join();
  ::close(OutPipe[1]);
  std::string Response;
  char Buf[4096];
  ssize_t N;
  while ((N = ::read(OutPipe[0], Buf, sizeof(Buf))) > 0)
    Response.append(Buf, static_cast<size_t>(N));
  ::close(InPipe[0]);
  ::close(OutPipe[0]);
  ASSERT_FALSE(Response.empty());
  json::Value Doc = parsed(Response.substr(0, Response.find('\n')));
  EXPECT_TRUE(Doc.find("ok")->boolean());
  EXPECT_EQ(Doc.find("id")->numberOr(-1), 9.0);
}

TEST(Serve, FdLoopStopsOnSignalFlag) {
  int InPipe[2], OutPipe[2];
  ASSERT_EQ(::pipe(InPipe), 0);
  ASSERT_EQ(::pipe(OutPipe), 0);
  Service S(loadBundle());
  std::atomic<bool> Stop{false};
  std::thread Loop([&] { serveFdLoop(S, InPipe[0], OutPipe[1], Stop); });
  // No EOF — the stop flag (what SIGTERM sets) must end the loop within
  // one poll interval, draining first.
  Stop.store(true);
  Loop.join();
  ::close(InPipe[1]);
  ::close(InPipe[0]);
  ::close(OutPipe[1]);
  ::close(OutPipe[0]);
  SUCCEED();
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

TEST(Serve, RequestsAndBatchSizeAreInstrumented) {
  auto &Reg = telemetry::MetricsRegistry::global();
  uint64_t Requests0 = Reg.counter("serve.requests").value();
  uint64_t Ok0 = Reg.counter("serve.responses.ok").value();
  uint64_t Err0 = Reg.counter("serve.responses.error").value();
  uint64_t Batches0 =
      Reg.histogram("serve.batch.size", telemetry::linearBounds(1, 32))
          .count();

  Service S(loadBundle());
  S.handleOne(requestLine(MinifiedFlag));
  S.handleOne("nope");

  EXPECT_EQ(Reg.counter("serve.requests").value(), Requests0 + 2);
  EXPECT_EQ(Reg.counter("serve.responses.ok").value(), Ok0 + 1);
  EXPECT_EQ(Reg.counter("serve.responses.error").value(), Err0 + 1);
  EXPECT_GE(Reg.counter("serve.responses.error.bad_request").value(), 1u);
  EXPECT_GE(Reg.histogram("serve.batch.size", telemetry::linearBounds(1, 32))
                .count(),
            Batches0 + 2);
  EXPECT_GE(Reg.histogram("serve.request.seconds", telemetry::timeBounds())
                .count(),
            2u);
}

TEST(Serve, RequestsAppearInTheEventStream) {
  std::ostringstream Events;
  telemetry::EventLog::global().attach(Events);
  {
    Service S(loadBundle());
    S.handleOne(requestLine(MinifiedFlag, ",\"id\":\"traced\""));
  }
  telemetry::EventLog::global().close();
  EXPECT_NE(Events.str().find("\"serve.request\""), std::string::npos);
  EXPECT_NE(Events.str().find("\"traced\""), std::string::npos);
  EXPECT_NE(Events.str().find("serve.batch"), std::string::npos);
}

TEST(Serve, WindowedAndHighWaterMetricsAreWired) {
  auto &Reg = telemetry::MetricsRegistry::global();
  Service S(loadBundle());
  // The sliding windows exist before any traffic (eager registration)...
  EXPECT_GE(Reg.numWindowed(), 3u);
  S.handleOne(requestLine(MinifiedFlag));
  // ...and request latency lands in the last-minute window.
  EXPECT_GE(Reg.windowed("serve.request.seconds", telemetry::timeBounds())
                .snapshot()
                .Count,
            1u);
  EXPECT_GE(
      Reg.windowed("serve.batch.size", telemetry::linearBounds(1, 32))
          .snapshot()
          .Count,
      1u);

  // Queue high-water: three requests held in the queue push the gauge to
  // at least 3.
  S.pause();
  std::vector<std::future<std::string>> Held;
  for (int I = 0; I < 3; ++I) {
    auto P = std::make_shared<std::promise<std::string>>();
    Held.push_back(P->get_future());
    S.submit(requestLine(MinifiedFlag),
             [P](std::string R) { P->set_value(std::move(R)); });
  }
  EXPECT_GE(Reg.gauge("serve.queue.depth.max").value(), 3.0);
  S.resume();
  for (auto &F : Held)
    F.get();
}

//===----------------------------------------------------------------------===//
// Admin protocol (pigeon.admin.v1)
//===----------------------------------------------------------------------===//

TEST(Serve, AdminMetricsReturnsEmbeddedSnapshot) {
  Service S(loadBundle());
  S.handleOne(requestLine(MinifiedFlag)); // Some traffic to report.
  json::Value Doc = parsed(S.handleOne("{\"id\":7,\"admin\":\"metrics\"}"));
  EXPECT_EQ(Doc.find("schema")->strOr(""), "pigeon.admin.v1");
  EXPECT_EQ(Doc.find("id")->numberOr(-1), 7.0);
  ASSERT_TRUE(Doc.find("ok")->boolean());
  EXPECT_EQ(Doc.find("admin")->strOr(""), "metrics");
  const json::Value *Metrics = Doc.find("metrics");
  ASSERT_TRUE(Metrics && Metrics->isObject());
  EXPECT_EQ(Metrics->find("schema")->strOr(""), "pigeon.metrics.v1");
  ASSERT_TRUE(Metrics->find("windowed")->isObject());
  EXPECT_TRUE(Metrics->find("windowed")->find("serve.request.seconds") !=
              nullptr);
}

TEST(Serve, AdminHealthReportsBundleAndQueueState) {
  Service S(loadBundle());
  json::Value Doc = parsed(S.handleOne("{\"admin\":\"health\"}"));
  ASSERT_TRUE(Doc.find("ok")->boolean());
  EXPECT_TRUE(Doc.find("id")->isNull()); // No id: echoed as null.
  const json::Value *H = Doc.find("health");
  ASSERT_TRUE(H && H->isObject());
  EXPECT_EQ(H->find("status")->strOr(""), "ok");
  EXPECT_EQ(H->find("lang")->strOr(""), "js");
  EXPECT_EQ(H->find("task")->strOr(""), "vars");
  EXPECT_GT(H->find("features")->numberOr(-1), 0.0);
  EXPECT_GT(H->find("symbols")->numberOr(-1), 0.0);
  EXPECT_GE(H->find("uptime_seconds")->numberOr(-1), 0.0);
  EXPECT_EQ(H->find("in_flight")->numberOr(-1), 0.0);
  EXPECT_EQ(H->find("queue_depth")->numberOr(-1), 0.0);
  EXPECT_EQ(H->find("queue_capacity")->numberOr(-1), 256.0);
  EXPECT_FALSE(H->find("paused")->boolean());
  EXPECT_FALSE(H->find("draining")->boolean());
}

TEST(Serve, AdminSloComparesWindowedP99AgainstTarget) {
  // Without a target: disabled, verdict unknown.
  {
    Service S(loadBundle());
    json::Value Doc = parsed(S.handleOne("{\"admin\":\"slo\"}"));
    ASSERT_TRUE(Doc.find("ok")->boolean());
    const json::Value *Slo = Doc.find("slo");
    ASSERT_TRUE(Slo && Slo->isObject());
    EXPECT_TRUE(Slo->find("target_p99_ms")->isNull());
    EXPECT_TRUE(Slo->find("ok")->isNull());
  }
  // With a generous target and recent traffic: a concrete verdict.
  ServeConfig Config;
  Config.SloP99Ms = 60000; // Any completed request beats one minute.
  Service S(loadBundle(), Config);
  S.handleOne(requestLine(MinifiedFlag));
  json::Value Doc = parsed(S.handleOne("{\"id\":\"s\",\"admin\":\"slo\"}"));
  ASSERT_TRUE(Doc.find("ok")->boolean());
  const json::Value *Slo = Doc.find("slo");
  ASSERT_TRUE(Slo && Slo->isObject());
  EXPECT_EQ(Slo->find("target_p99_ms")->numberOr(-1), 60000.0);
  EXPECT_GE(Slo->find("count")->numberOr(-1), 1.0);
  EXPECT_GE(Slo->find("p99_ms")->numberOr(-1), 0.0);
  ASSERT_TRUE(Slo->find("ok")->isBool());
  EXPECT_TRUE(Slo->find("ok")->boolean());
}

TEST(Serve, AdminProfileReportsSamplerState) {
  Service S(loadBundle());
  S.handleOne(requestLine(MinifiedFlag));
  json::Value Doc = parsed(S.handleOne("{\"admin\":\"profile\"}"));
  ASSERT_TRUE(Doc.find("ok")->boolean());
  const json::Value *P = Doc.find("profile");
  ASSERT_TRUE(P && P->isObject());
  EXPECT_TRUE(P->find("running")->isBool());
  EXPECT_GE(P->find("samples")->numberOr(-1), 0.0);
  EXPECT_GE(P->find("attributed")->numberOr(-1), 0.0);
  EXPECT_TRUE(P->find("lines")->isArray());
  EXPECT_TRUE(P->find("folded")->isString());
}

TEST(Serve, AdminPromReturnsExpositionText) {
  Service S(loadBundle());
  S.handleOne(requestLine(MinifiedFlag));
  json::Value Doc = parsed(S.handleOne("{\"admin\":\"prom\"}"));
  ASSERT_TRUE(Doc.find("ok")->boolean());
  const json::Value *Prom = Doc.find("prom");
  ASSERT_TRUE(Prom && Prom->isString());
  EXPECT_NE(Prom->str().find("# HELP "), std::string::npos);
  EXPECT_NE(Prom->str().find("serve_requests_total "), std::string::npos);
  EXPECT_NE(Prom->str().find("serve_request_seconds_bucket{le="),
            std::string::npos);
}

TEST(Serve, AdminUnknownVerbAndBadShapesAreBadRequests) {
  auto &Reg = telemetry::MetricsRegistry::global();
  uint64_t Bad0 = Reg.counter("serve.admin.bad_request").value();
  Service S(loadBundle());

  json::Value Unknown =
      parsed(S.handleOne("{\"id\":3,\"admin\":\"frobnicate\"}"));
  EXPECT_EQ(Unknown.find("schema")->strOr(""), "pigeon.admin.v1");
  EXPECT_FALSE(Unknown.find("ok")->boolean());
  EXPECT_EQ(Unknown.find("id")->numberOr(-1), 3.0);
  EXPECT_EQ(errorCode(Unknown), "bad_request");
  EXPECT_EQ(Reg.counter("serve.admin.bad_request").value(), Bad0 + 1);

  json::Value NonString = parsed(S.handleOne("{\"admin\":42}"));
  EXPECT_EQ(NonString.find("schema")->strOr(""), "pigeon.admin.v1");
  EXPECT_EQ(errorCode(NonString), "bad_request");

  json::Value BadId =
      parsed(S.handleOne("{\"id\":[1],\"admin\":\"health\"}"));
  EXPECT_EQ(BadId.find("schema")->strOr(""), "pigeon.admin.v1");
  EXPECT_EQ(errorCode(BadId), "bad_request");

  // A serve request whose *source* mentions admin is not an admin
  // request: it goes down the normal path.
  json::Value Normal = parsed(S.handleOne(
      "{\"lang\":\"js\",\"source\":\"var admin = 1;\"}"));
  EXPECT_EQ(Normal.find("schema")->strOr(""), "pigeon.serve.v1");
}

TEST(Serve, AdminIsNotCountedAsServeTraffic) {
  auto &Reg = telemetry::MetricsRegistry::global();
  Service S(loadBundle());
  uint64_t Requests0 = Reg.counter("serve.requests").value();
  uint64_t Admin0 = Reg.counter("serve.admin.requests").value();
  S.handleOne("{\"admin\":\"health\"}");
  S.handleOne("{\"admin\":\"metrics\"}");
  EXPECT_EQ(Reg.counter("serve.requests").value(), Requests0);
  EXPECT_EQ(Reg.counter("serve.admin.requests").value(), Admin0 + 2);
}

TEST(Serve, AdminAnswersWhilePausedAndWhenQueueIsFull) {
  ServeConfig Config;
  Config.QueueCapacity = 2;
  Service S(loadBundle(), Config);
  S.pause();
  std::vector<std::future<std::string>> Held;
  for (int I = 0; I < 2; ++I) {
    auto P = std::make_shared<std::promise<std::string>>();
    Held.push_back(P->get_future());
    S.submit(requestLine(MinifiedFlag),
             [P](std::string R) { P->set_value(std::move(R)); });
  }
  // The queue is full and the batcher is paused — a serve request would
  // answer `overloaded`, but admin introspection must still work, and
  // must see the congestion it is there to diagnose.
  std::string Response;
  S.submit("{\"admin\":\"health\"}",
           [&Response](std::string R) { Response = std::move(R); });
  ASSERT_FALSE(Response.empty()); // Answered synchronously.
  json::Value Doc = parsed(Response);
  ASSERT_TRUE(Doc.find("ok")->boolean());
  const json::Value *H = Doc.find("health");
  EXPECT_EQ(H->find("queue_depth")->numberOr(-1), 2.0);
  EXPECT_GE(H->find("queue_high_water")->numberOr(-1), 2.0);
  EXPECT_TRUE(H->find("paused")->boolean());
  S.resume();
  for (auto &F : Held)
    F.get();
}

TEST(Serve, AdminHealthReportsDrainingAfterShutdown) {
  Service S(loadBundle());
  S.shutdown();
  std::string Response;
  S.submit("{\"admin\":\"health\"}",
           [&Response](std::string R) { Response = std::move(R); });
  ASSERT_FALSE(Response.empty());
  json::Value Doc = parsed(Response);
  ASSERT_TRUE(Doc.find("ok")->boolean());
  EXPECT_EQ(Doc.find("health")->find("status")->strOr(""), "draining");
  EXPECT_TRUE(Doc.find("health")->find("draining")->boolean());
}

//===----------------------------------------------------------------------===//
// Request-scoped tracing: rids, timing echo, slow log, flight recorder
//===----------------------------------------------------------------------===//

TEST(Serve, RidIsEchoedInAdmissionOrderOnEveryOutcome) {
  Service S(loadBundle());
  // Success and structured error both carry the rid, placed right after
  // the schema so the envelope prefix is greppable.
  std::string First = S.handleOne(requestLine(MinifiedFlag, ",\"id\":1"));
  EXPECT_EQ(First.rfind("{\"schema\":\"pigeon.serve.v1\",\"rid\":1,", 0),
            0u);
  std::string Second =
      S.handleOne("{\"lang\":\"js\",\"id\":2,\"source\":42}");
  json::Value Doc = parsed(Second);
  EXPECT_EQ(errorCode(Doc), "bad_request");
  EXPECT_DOUBLE_EQ(Doc.find("rid")->numberOr(-1), 2.0);

  // Rids are unique per service across connections: handleOne and the
  // stream front end share one admission sequence.
  std::istringstream In(requestLine(MinifiedFlag, ",\"id\":3") + "\n");
  std::ostringstream Out;
  serveStream(S, In, Out);
  json::Value Streamed = parsed(Out.str());
  EXPECT_DOUBLE_EQ(Streamed.find("rid")->numberOr(-1), 3.0);
}

TEST(Serve, AdmissionRejectionsCarryNoRid) {
  // A request refused before admission never got a sequence number;
  // inventing one would break the "rid = admission order" contract.
  Service S(loadBundle());
  S.shutdown();
  std::string Response;
  S.submit(requestLine(MinifiedFlag),
           [&Response](std::string R) { Response = std::move(R); });
  ASSERT_FALSE(Response.empty());
  EXPECT_EQ(errorCode(parsed(Response)), "shutting_down");
  EXPECT_EQ(Response.find("\"rid\""), std::string::npos);
}

TEST(Serve, TimingEchoDecomposesTheMeasuredLatency) {
  Service S(loadBundle());
  json::Value Doc = parsed(
      S.handleOne(requestLine(MinifiedFlag, ",\"timing\":true")));
  ASSERT_TRUE(Doc.find("ok")->boolean());
  const json::Value *T = Doc.find("timing");
  ASSERT_TRUE(T && T->isObject());

  double Total = T->find("total_ms")->numberOr(-1);
  EXPECT_GT(Total, 0.0);
  double Sum = 0;
  for (const char *Stage : StageNames) {
    const json::Value *V = T->find(std::string(Stage) + "_ms");
    ASSERT_TRUE(V && V->isNumber()) << Stage;
    EXPECT_GE(V->number(), 0.0) << Stage;
    Sum += V->number();
  }
  // The six stages partition the admit→respond interval: their sum is
  // the total up to rendering rounding (well inside the 5% the
  // acceptance criterion allows).
  EXPECT_NEAR(Sum, Total, Total * 0.001);
  EXPECT_GE(T->find("batch_size")->numberOr(0), 1.0);
  EXPECT_GE(T->find("depth_at_admit")->numberOr(-1), 0.0);
}

TEST(Serve, TimingAbsentOrFalseLeavesTheResponseUntouched) {
  Service S(loadBundle());
  std::string Plain = S.handleOne(requestLine(MinifiedFlag, ",\"id\":9"));
  EXPECT_EQ(Plain.find("\"timing\""), std::string::npos);
  // `"timing": false` renders byte-identically to the flag being absent
  // (same service, so the rid advances by exactly one).
  std::string Off =
      S.handleOne(requestLine(MinifiedFlag, ",\"id\":9,\"timing\":false"));
  EXPECT_EQ(Off.replace(Off.find("\"rid\":2"), 7, "\"rid\":1"), Plain);
  // A non-boolean timing flag is a bad request, like every other typed
  // field.
  json::Value Bad = parsed(
      S.handleOne(requestLine(MinifiedFlag, ",\"timing\":1")));
  EXPECT_EQ(errorCode(Bad), "bad_request");
}

TEST(Serve, SlowLogCapturesRequestsAboveTheThreshold) {
  SlowLog &Log = SlowLog::global();
  const std::string Path = ::testing::TempDir() + "serve_slow.jsonl";

  // Threshold far above any real latency: nothing is captured.
  {
    Log.open(Path);
    ServeConfig Config;
    Config.SlowTraceMs = 60000;
    Service S(loadBundle(), Config);
    S.handleOne(requestLine(MinifiedFlag));
    EXPECT_TRUE(Log.lines().empty());
  }

  // A synthetic straggler: the request sits in a paused queue for
  // ~100 ms, far over the 20 ms threshold. The capture's stage timeline
  // must account for the measured total — the queue stage is where the
  // time went.
  {
    Log.open(Path); // Reopen: clears the previous capture state.
    ServeConfig Config;
    Config.SlowTraceMs = 20;
    Service S(loadBundle(), Config);
    S.pause();
    std::promise<std::string> P;
    std::future<std::string> F = P.get_future();
    S.submit(requestLine(MinifiedFlag, ",\"id\":\"slow\""),
             [&P](std::string R) { P.set_value(std::move(R)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    S.resume();
    F.get();

    std::vector<std::string> Lines = Log.lines();
    ASSERT_EQ(Lines.size(), 1u);
    json::Value Entry = parsed(Lines[0]);
    EXPECT_EQ(Entry.find("schema")->strOr(""), "pigeon.slowlog.v1");
    EXPECT_EQ(Entry.find("id")->strOr(""), "slow");
    EXPECT_TRUE(Entry.find("ok")->boolean());
    double Total = Entry.find("total_ms")->numberOr(0);
    EXPECT_GE(Total, 100.0);
    double Sum = 0;
    for (const char *Stage : StageNames)
      Sum += Entry.find(std::string(Stage) + "_ms")->numberOr(0);
    EXPECT_NEAR(Sum, Total, Total * 0.05);
    EXPECT_GE(Entry.find("queue_ms")->numberOr(0), 90.0);
    ASSERT_TRUE(Entry.find("batch_rids")->isArray());
    EXPECT_EQ(Entry.find("batch_rids")->array().size(), 1u);
  }
  Log.close();
  std::remove(Path.c_str());
}

TEST(Serve, AdminFlightrecReturnsTheRecentRecords) {
  Service S(loadBundle()); // Ctor arms the global flight recorder.
  S.handleOne(requestLine(MinifiedFlag, ",\"id\":\"flight\""));
  json::Value Doc = parsed(S.handleOne("{\"id\":4,\"admin\":\"flightrec\"}"));
  EXPECT_EQ(Doc.find("schema")->strOr(""), "pigeon.admin.v1");
  ASSERT_TRUE(Doc.find("ok")->boolean());
  const json::Value *F = Doc.find("flightrec");
  ASSERT_TRUE(F && F->isObject());
  EXPECT_EQ(F->find("capacity")->numberOr(-1), 256.0);
  EXPECT_GE(F->find("count")->numberOr(-1), 1.0);
  EXPECT_GE(F->find("total")->numberOr(-1),
            F->find("count")->numberOr(-1));
  const json::Value *Records = F->find("records");
  ASSERT_TRUE(Records && Records->isArray());
  ASSERT_FALSE(Records->array().empty());
  bool SawRequest = false;
  for (const json::Value &R : Records->array()) {
    ASSERT_TRUE(R.isObject()); // Embedded verbatim, not re-escaped.
    if (const json::Value *E = R.find("event"))
      SawRequest |= E->strOr("") == "serve.request";
  }
  EXPECT_TRUE(SawRequest);
  telemetry::EventLog::global().disableRing();
}

TEST(Serve, FlightRecorderDisabledByZeroCapacity) {
  ServeConfig Config;
  Config.FlightRecorder = 0;
  Service S(loadBundle(), Config);
  EXPECT_FALSE(telemetry::EventLog::global().ringEnabled());
  json::Value Doc = parsed(S.handleOne("{\"admin\":\"flightrec\"}"));
  ASSERT_TRUE(Doc.find("ok")->boolean());
  EXPECT_EQ(Doc.find("flightrec")->find("capacity")->numberOr(-1), 0.0);
  EXPECT_TRUE(Doc.find("flightrec")->find("records")->array().empty());
}

TEST(Serve, AdminHealthReportsWindowedRates) {
  Service S(loadBundle());
  S.handleOne(requestLine(MinifiedFlag));
  S.handleOne("not json either"); // One error for the error-rate window.
  json::Value Doc = parsed(S.handleOne("{\"admin\":\"health\"}"));
  ASSERT_TRUE(Doc.find("ok")->boolean());
  const json::Value *W = Doc.find("health")->find("window");
  ASSERT_TRUE(W && W->isObject());
  EXPECT_GT(W->find("seconds")->numberOr(0), 0.0);
  // The windows are process-global, so other tests' traffic may be in
  // here too — lower bounds only.
  EXPECT_GE(W->find("requests")->numberOr(-1), 2.0);
  EXPECT_GT(W->find("rate_per_sec")->numberOr(-1), 0.0);
  EXPECT_GE(W->find("errors")->numberOr(-1), 1.0);
  EXPECT_GT(W->find("error_rate_per_sec")->numberOr(-1), 0.0);
}

TEST(Serve, StageHistogramsAreFedPerRequest) {
  auto &Reg = telemetry::MetricsRegistry::global();
  Service S(loadBundle());
  std::array<uint64_t, NumStages> Before;
  for (size_t I = 0; I < NumStages; ++I)
    Before[I] = Reg.histogram("serve.stage." + std::string(StageNames[I]) +
                                  ".seconds",
                              telemetry::timeBounds())
                    .count();
  S.handleOne(requestLine(MinifiedFlag));
  for (size_t I = 0; I < NumStages; ++I)
    EXPECT_EQ(Reg.histogram("serve.stage." + std::string(StageNames[I]) +
                                ".seconds",
                            telemetry::timeBounds())
                  .count(),
              Before[I] + 1)
        << StageNames[I];
}

TEST(Serve, RequestEventsCarryTheStageTimeline) {
  std::ostringstream Events;
  telemetry::EventLog::global().attach(Events);
  {
    Service S(loadBundle());
    S.handleOne(requestLine(MinifiedFlag, ",\"id\":\"staged\""));
  }
  telemetry::EventLog::global().close();

  std::istringstream In(Events.str());
  std::string Line;
  bool Found = false;
  while (std::getline(In, Line)) {
    std::optional<json::Value> Doc = json::parse(Line);
    if (!Doc)
      continue;
    std::optional<RequestSample> Sample = parseRequestSample(*Doc);
    if (!Sample)
      continue;
    Found = true;
    EXPECT_GE(Sample->Rid, 1u);
    EXPECT_GT(Sample->TotalMs, 0.0);
    double Sum = 0;
    for (double Ms : Sample->StageMs)
      Sum += Ms;
    EXPECT_NEAR(Sum, Sample->TotalMs, Sample->TotalMs * 0.001);
    EXPECT_GE(Sample->BatchSize, 1u);
  }
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Write-path robustness and transports
//===----------------------------------------------------------------------===//

/// Regression for the mid-frame response drop: the old write lambda
/// treated write() returning -1 with errno == EINTR as "peer gone" and
/// abandoned the rest of the frame, corrupting the newline-delimited
/// stream. writeAll must survive a storm of signals landing mid-write
/// (no SA_RESTART, so the syscall really returns EINTR), short writes
/// from a tiny send buffer, and EAGAIN from a non-blocking fd — and
/// still deliver every byte in order.
TEST(Serve, WriteAllSurvivesSignalsShortWritesAndEagain) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  int Small = 4096;
  ::setsockopt(Fds[0], SOL_SOCKET, SO_SNDBUF, &Small, sizeof(Small));
  // Non-blocking writer: partial sends surface as short writes and
  // EAGAIN instead of blocking, exercising the poll-then-retry path.
  int Flags = ::fcntl(Fds[0], F_GETFL, 0);
  ASSERT_EQ(::fcntl(Fds[0], F_SETFL, Flags | O_NONBLOCK), 0);

  struct sigaction SA, Old;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = [](int) {};
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // Deliberately no SA_RESTART: write() must see EINTR.
  ASSERT_EQ(::sigaction(SIGUSR1, &SA, &Old), 0);

  std::string Payload(1 << 20, '\0');
  for (size_t I = 0; I < Payload.size(); ++I)
    Payload[I] = static_cast<char>('a' + I % 26);

  std::atomic<bool> WriterDone{false};
  bool WriteOk = false;
  std::thread Writer([&] {
    WriteOk = writeAll(Fds[0], Payload);
    WriterDone.store(true, std::memory_order_release);
    ::shutdown(Fds[0], SHUT_WR); // EOF ends the reader below.
  });
  pthread_t Target = Writer.native_handle();

  std::string Received;
  char Buf[512];
  while (true) {
    if (!WriterDone.load(std::memory_order_acquire))
      ::pthread_kill(Target, SIGUSR1);
    ssize_t N = ::read(Fds[1], Buf, sizeof(Buf));
    if (N <= 0)
      break;
    Received.append(Buf, static_cast<size_t>(N));
  }
  Writer.join();
  ::sigaction(SIGUSR1, &Old, nullptr);
  ::close(Fds[0]);
  ::close(Fds[1]);

  EXPECT_TRUE(WriteOk);
  ASSERT_EQ(Received.size(), Payload.size());
  EXPECT_EQ(Received, Payload); // Every byte, in order — no torn frame.
}

/// The tentpole pin, mirrored on the pipeline's thread-count
/// invariance: the sharded batcher must produce responses byte-identical
/// to a sequential single-worker service at every worker count. Each
/// worker parses and extracts into never-committed overlays of the
/// read-only resident bundle, so nothing one request interns can leak
/// into another's response.
TEST(Serve, ResponsesByteIdenticalAtAnyWorkerCount) {
  std::vector<std::string> Lines;
  for (int I = 0; I < 12; ++I)
    Lines.push_back(requestLine(
        I % 2 ? MinifiedLoop : MinifiedFlag,
        ",\"id\":" + std::to_string(I) +
            (I % 3 == 0 ? ",\"explain\":true" : "")));

  Service Sequential(loadBundle());
  std::vector<std::string> Expected;
  for (const std::string &Line : Lines)
    Expected.push_back(Sequential.handleOne(Line));

  for (size_t Workers : std::vector<size_t>{1, 2, 4, 0 /* hardware */}) {
    ServeConfig Config;
    Config.Workers = Workers;
    Config.MaxBatch = 3; // Force several batches per worker.
    Service S(loadBundle(), Config);
    std::vector<std::string> Got(Lines.size());
    S.pause(); // Queue everything, then let the workers race.
    std::mutex M;
    for (size_t I = 0; I < Lines.size(); ++I)
      S.submit(Lines[I], [&Got, &M, I](std::string Response) {
        std::lock_guard<std::mutex> L(M);
        Got[I] = std::move(Response);
      });
    S.resume();
    S.drain();
    EXPECT_EQ(Got, Expected) << "workers=" << Workers;
  }
}

/// A client that pipelines requests down one stream must read its
/// responses in the order it sent them, even though N workers finish
/// batches in shard order — the OrderedWriter contract. Pinned as full
/// byte-identity of the piped output at every worker count.
TEST(Serve, PipelinedStdioOutputByteIdenticalAtAnyWorkerCount) {
  std::string Input;
  for (int I = 0; I < 12; ++I)
    Input += requestLine(I % 2 ? MinifiedLoop : MinifiedFlag,
                         ",\"id\":" + std::to_string(I)) +
             "\n";

  auto RunLoop = [&Input](size_t Workers) {
    ServeConfig Config;
    Config.Workers = Workers;
    Config.MaxBatch = 3; // Force several batches per worker.
    Service S(loadBundle(), Config);
    int In[2], Out[2];
    EXPECT_EQ(0, ::pipe(In));
    EXPECT_EQ(0, ::pipe(Out));
    std::atomic<bool> Stop{false};
    std::thread Loop([&S, &In, &Out, &Stop] {
      serveFdLoop(S, In[0], Out[1], Stop);
      ::close(Out[1]); // EOF for the reader below.
    });
    EXPECT_TRUE(writeAll(In[1], Input));
    ::close(In[1]); // EOF lets the loop drain and exit.
    std::string All;
    char Buf[4096];
    ssize_t N;
    while ((N = ::read(Out[0], Buf, sizeof(Buf))) > 0)
      All.append(Buf, static_cast<size_t>(N));
    Loop.join();
    ::close(In[0]);
    ::close(Out[0]);
    return All;
  };

  const std::string Expected = RunLoop(1);
  EXPECT_NE(Expected.find("\"rid\":1"), std::string::npos);
  for (size_t Workers : std::vector<size_t>{2, 4, 0 /* hardware */})
    EXPECT_EQ(RunLoop(Workers), Expected) << "workers=" << Workers;
}

/// Reads until a full newline-terminated frame (or EOF) arrives.
std::string readFrame(int Fd) {
  std::string Data;
  char Buf[4096];
  while (Data.find('\n') == std::string::npos) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N <= 0)
      break;
    Data.append(Buf, static_cast<size_t>(N));
  }
  return Data;
}

int connectUnixRetry(const std::string &Path) {
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
  for (int I = 0; I < 500; ++I) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd >= 0 &&
        ::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                  sizeof(Addr)) == 0)
      return Fd;
    if (Fd >= 0)
      ::close(Fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

/// A client that vanishes mid-stream must not take the server (or any
/// other connection) with it, and a half-closed connection must still
/// receive every response in full — including one for a trailing
/// unterminated line — before its fd closes.
TEST(Serve, UnixSocketSurvivesAbruptDisconnectMidStream) {
  std::string Path =
      "/tmp/pigeon_serve_test_" + std::to_string(::getpid()) + ".sock";
  Service S(loadBundle());
  std::atomic<bool> Stop{false};
  std::thread Server([&] { EXPECT_EQ(serveSocket(S, Path, Stop), 0); });

  // Connection 1: submit a request, then slam the connection shut
  // without ever reading the response.
  int C1 = connectUnixRetry(Path);
  ASSERT_GE(C1, 0);
  std::string L1 = requestLine(MinifiedFlag, ",\"id\":\"gone\"") + "\n";
  ASSERT_EQ(::write(C1, L1.data(), L1.size()),
            static_cast<ssize_t>(L1.size()));
  ::close(C1);

  // Connection 2: half-close after an unterminated line. The mux must
  // treat the trailing bytes as a request and deliver the whole frame
  // before reaping the connection.
  int C2 = connectUnixRetry(Path);
  ASSERT_GE(C2, 0);
  std::string L2 = requestLine(MinifiedLoop, ",\"id\":\"whole\"");
  ASSERT_EQ(::write(C2, L2.data(), L2.size()),
            static_cast<ssize_t>(L2.size()));
  ::shutdown(C2, SHUT_WR);
  std::string Frame = readFrame(C2);
  ::close(C2);
  ASSERT_NE(Frame.find('\n'), std::string::npos) << "torn frame: " << Frame;
  json::Value Doc = parsed(Frame.substr(0, Frame.find('\n')));
  EXPECT_TRUE(Doc.find("ok")->boolean());
  EXPECT_EQ(Doc.find("id")->strOr(""), "whole");

  Stop.store(true);
  Server.join();
}

/// Same guarantees over TCP: ephemeral-port bind is discoverable via
/// the BoundPort out-param, an abrupt disconnect is isolated, and a
/// slow reader behind a tiny receive buffer still gets the complete
/// frame (writeAll polls through the backpressure instead of dropping
/// the remainder).
TEST(Serve, TcpDeliversWholeFramesToSlowReaders) {
  Service S(loadBundle());
  std::atomic<bool> Stop{false};
  std::atomic<int> Port{0};
  std::thread Server(
      [&] { EXPECT_EQ(serveTcp(S, "127.0.0.1:0", Stop, &Port), 0); });
  for (int I = 0; I < 500 && Port.load(std::memory_order_acquire) == 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_NE(Port.load(), 0);

  auto ConnectTcp = [&](bool TinyRcvBuf) {
    int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    if (TinyRcvBuf) {
      int Small = 1; // Kernel clamps to its minimum; still forces
                     // multiple write rounds for a multi-KB frame.
      ::setsockopt(Fd, SOL_SOCKET, SO_RCVBUF, &Small, sizeof(Small));
    }
    struct sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(Port.load()));
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                  sizeof(Addr)) != 0) {
      ::close(Fd);
      return -1;
    }
    return Fd;
  };

  // Abrupt mid-stream disconnect first; the server must shrug it off.
  int C1 = ConnectTcp(false);
  ASSERT_GE(C1, 0);
  std::string L1 = requestLine(MinifiedFlag, ",\"id\":\"gone\"") + "\n";
  ASSERT_EQ(::write(C1, L1.data(), L1.size()),
            static_cast<ssize_t>(L1.size()));
  ::close(C1);

  // Slow reader: ask for an explained response (a larger frame), then
  // drain it in small sips with pauses so the server's writes back up.
  int C2 = ConnectTcp(true);
  ASSERT_GE(C2, 0);
  std::string L2 =
      requestLine(MinifiedFlag, ",\"id\":\"slow\",\"explain\":true") + "\n";
  ASSERT_EQ(::write(C2, L2.data(), L2.size()),
            static_cast<ssize_t>(L2.size()));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::string Frame;
  char Buf[64];
  while (Frame.find('\n') == std::string::npos) {
    ssize_t N = ::read(C2, Buf, sizeof(Buf));
    if (N <= 0)
      break;
    Frame.append(Buf, static_cast<size_t>(N));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::close(C2);
  ASSERT_NE(Frame.find('\n'), std::string::npos) << "torn frame";
  json::Value Doc = parsed(Frame.substr(0, Frame.find('\n')));
  EXPECT_TRUE(Doc.find("ok")->boolean());
  EXPECT_EQ(Doc.find("id")->strOr(""), "slow");

  Stop.store(true);
  Server.join();
}

} // namespace
