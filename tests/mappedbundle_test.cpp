//===- mappedbundle_test.cpp - Unit tests for v3 mmap bundles --------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Covers the zero-copy bundle format from both sides: the honest side
/// (round trips, determinism, v2-vs-v3 prediction identity across
/// languages and tasks, live extension over frozen arenas) and the
/// hostile side (truncation, misalignment, overlap, checksum damage,
/// crafted overflowing section bounds, cross-version reads). Every
/// hostile case must fail closed — nullptr plus a diagnostic naming the
/// byte offset — and never read out of bounds.
///
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "core/MappedBundle.h"
#include "core/ModelIO.h"

#include "lang/java/JavaParser.h"
#include "lang/js/JsParser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

lang::ParseResult parseAs(Language Lang, const std::string &Text,
                          StringInterner &SI) {
  return Lang == Language::Java ? java::parse(Text, SI) : js::parse(Text, SI);
}

/// Trains a small bundle for any (language, task) pair on a synthetic
/// corpus.
ModelBundle trainBundle(Language Lang = Language::JavaScript,
                        Task TaskKind = Task::VariableNames) {
  ModelBundle Bundle;
  Bundle.Lang = Lang;
  Bundle.Interner = std::make_unique<StringInterner>();
  Bundle.Extraction = tunedExtraction(Lang, TaskKind);
  Bundle.TaskKind = TaskKind;

  datagen::CorpusSpec Spec = datagen::defaultSpec(Lang, /*Seed=*/5);
  Spec.NumProjects = 6;
  crf::ElementSelector Selector = selectorFor(TaskKind);
  std::vector<crf::CrfGraph> Graphs;
  std::vector<std::optional<Tree>> Keep;
  for (const datagen::SourceFile &File : datagen::generateCorpus(Spec)) {
    lang::ParseResult R = parseAs(Lang, File.Text, *Bundle.Interner);
    EXPECT_TRUE(R.ok());
    Keep.push_back(std::move(R.Tree));
    auto Contexts = paths::extractPathContexts(*Keep.back(),
                                               Bundle.Extraction,
                                               Bundle.Table);
    Graphs.push_back(crf::buildGraph(*Keep.back(), Contexts, Selector));
  }
  Bundle.Model.train(Graphs);
  return Bundle;
}

/// Per-element prediction + top-3 (label, exact score) signature; two
/// bundles that predict byte-identically produce equal signatures.
std::string signatureOf(ModelBundle &Bundle, const std::string &Source) {
  lang::ParseResult R = parseAs(Bundle.Lang, Source, *Bundle.Interner);
  EXPECT_TRUE(R.Tree.has_value());
  auto Contexts = paths::extractPathContexts(*R.Tree, Bundle.Extraction,
                                             Bundle.Table);
  crf::CrfGraph G =
      crf::buildGraph(*R.Tree, Contexts, selectorFor(Bundle.TaskKind));
  std::vector<Symbol> Pred = Bundle.Model.predict(G);
  std::string Sig;
  char Buf[64];
  for (uint32_t N : G.Unknowns) {
    Sig += std::string(Bundle.Interner->str(G.Nodes[N].Gold));
    Sig += ": ";
    for (const auto &[Label, Score] : Bundle.Model.topK(G, N, Pred, 3)) {
      std::snprintf(Buf, sizeof(Buf), "%.17g", Score);
      Sig += std::string(Bundle.Interner->str(Label));
      Sig += '=';
      Sig += Buf;
      Sig += ',';
    }
    Sig += '\n';
  }
  return Sig;
}

std::string v3Bytes(const ModelBundle &Bundle) {
  std::ostringstream OS;
  saveModelV3(OS, Bundle);
  return OS.str();
}

/// Writes bytes to a unique temp file; unlinked at destruction.
class TempFile {
public:
  explicit TempFile(const std::string &Bytes) {
    char Template[] = "/tmp/pigeon_mapped_test_XXXXXX";
    int Fd = ::mkstemp(Template);
    EXPECT_GE(Fd, 0);
    PathStr = Template;
    EXPECT_EQ(::write(Fd, Bytes.data(), Bytes.size()),
              static_cast<ssize_t>(Bytes.size()));
    ::close(Fd);
  }
  ~TempFile() { ::unlink(PathStr.c_str()); }
  const std::string &path() const { return PathStr; }

private:
  std::string PathStr;
};

/// Maps a (possibly corrupted) byte image and expects rejection; returns
/// the diagnostic for content checks.
LoadDiag expectRejected(const std::string &Bytes) {
  TempFile File(Bytes);
  LoadDiag Diag;
  auto Bundle = openMappedBundle(File.path(), &Diag,
                                 /*VerifyChecksum=*/true);
  EXPECT_EQ(Bundle, nullptr) << "hostile image was accepted: " << Diag.Error;
  EXPECT_FALSE(Diag.Error.empty());
  return Diag;
}

const char *MinifiedJs =
    "function f() { var a = false; while (!a) { if (check()) { a = true; } "
    "} return a; }";
const char *MinifiedJava =
    "class A { int add(int first, int second) { return first + second; } }";

//===----------------------------------------------------------------------===//
// Round trips and identity
//===----------------------------------------------------------------------===//

TEST(MappedBundle, V3RoundTripPredictsIdentically) {
  ModelBundle Original = trainBundle();
  std::string Before = signatureOf(Original, MinifiedJs);
  ASSERT_FALSE(Before.empty());

  TempFile File(v3Bytes(Original));
  LoadDiag Diag;
  auto Mapped = openMappedBundle(File.path(), &Diag, /*VerifyChecksum=*/true);
  ASSERT_NE(Mapped, nullptr) << Diag.Error;
  EXPECT_EQ(Mapped->Lang, Original.Lang);
  EXPECT_EQ(Mapped->TaskKind, Original.TaskKind);
  EXPECT_EQ(Mapped->Interner->size(), Original.Interner->size());
  EXPECT_EQ(Mapped->Table.size(), Original.Table.size());
  EXPECT_EQ(Mapped->Model.numFeatures(), Original.Model.numFeatures());
  EXPECT_NE(Mapped->Mapping, nullptr);

  EXPECT_EQ(signatureOf(*Mapped, MinifiedJs), Before);
}

TEST(MappedBundle, V2AndV3PredictIdenticallyAcrossLangsAndTasks) {
  const struct {
    Language Lang;
    Task TaskKind;
    const char *Source;
  } Cases[] = {
      {Language::JavaScript, Task::VariableNames, MinifiedJs},
      {Language::JavaScript, Task::MethodNames, MinifiedJs},
      {Language::Java, Task::VariableNames, MinifiedJava},
      {Language::Java, Task::MethodNames, MinifiedJava},
  };
  for (const auto &C : Cases) {
    ModelBundle Original = trainBundle(C.Lang, C.TaskKind);

    std::stringstream V2;
    saveModel(V2, Original);
    std::unique_ptr<ModelBundle> FromV2 = loadModel(V2);
    ASSERT_NE(FromV2, nullptr);

    TempFile File(v3Bytes(Original));
    LoadDiag Diag;
    auto FromV3 =
        openMappedBundle(File.path(), &Diag, /*VerifyChecksum=*/true);
    ASSERT_NE(FromV3, nullptr)
        << "lang " << static_cast<int>(C.Lang) << " task "
        << static_cast<int>(C.TaskKind) << ": " << Diag.Error;

    EXPECT_EQ(signatureOf(*FromV2, C.Source), signatureOf(*FromV3, C.Source))
        << "lang " << static_cast<int>(C.Lang) << " task "
        << static_cast<int>(C.TaskKind);
  }
}

TEST(MappedBundle, SaveIsDeterministic) {
  ModelBundle Original = trainBundle();
  EXPECT_EQ(v3Bytes(Original), v3Bytes(Original));
}

TEST(MappedBundle, FrozenRoundTripResavesIdentically) {
  // map -> saveModelV3 must reproduce the file byte for byte: the frozen
  // flatten() path and the trained-map flatten() path agree exactly.
  ModelBundle Original = trainBundle();
  std::string First = v3Bytes(Original);
  TempFile File(First);
  auto Mapped = openMappedBundle(File.path());
  ASSERT_NE(Mapped, nullptr);
  EXPECT_EQ(v3Bytes(*Mapped), First);
}

TEST(MappedBundle, NewStringsAndPathsExtendFrozenArenas) {
  ModelBundle Original = trainBundle();
  TempFile File(v3Bytes(Original));
  auto Mapped = openMappedBundle(File.path());
  ASSERT_NE(Mapped, nullptr);

  size_t Saved = Mapped->Interner->size();
  Symbol Fresh = Mapped->Interner->intern("neverSeenBefore123");
  EXPECT_EQ(Fresh.index(), Saved);
  EXPECT_EQ(Mapped->Interner->str(Fresh), "neverSeenBefore123");
  // Frozen ids still resolve after growth, and lookups hit the stored
  // index.
  for (uint32_t I = 0; I < Saved; ++I) {
    std::string_view S = Mapped->Interner->str(Symbol::fromIndex(I));
    if (I > 0 && !S.empty())
      EXPECT_EQ(Mapped->Interner->lookup(S), Symbol::fromIndex(I));
  }
  // Parsing fresh source through the mapped bundle works end to end.
  EXPECT_FALSE(signatureOf(*Mapped, MinifiedJs).empty());
}

TEST(MappedBundle, LoadModelFileSniffsBothFormats) {
  ModelBundle Original = trainBundle();

  std::ostringstream V2;
  saveModel(V2, Original);
  TempFile F2(V2.str());
  TempFile F3(v3Bytes(Original));

  LoadDiag Diag;
  auto B2 = loadModelFile(F2.path(), &Diag);
  ASSERT_NE(B2, nullptr) << Diag.Error;
  EXPECT_EQ(B2->Mapping, nullptr);

  auto B3 = loadModelFile(F3.path(), &Diag, /*VerifyChecksum=*/true);
  ASSERT_NE(B3, nullptr) << Diag.Error;
  EXPECT_NE(B3->Mapping, nullptr);

  EXPECT_EQ(signatureOf(*B2, MinifiedJs), signatureOf(*B3, MinifiedJs));
}

//===----------------------------------------------------------------------===//
// Cross-version reads (satellite: expected-vs-found diagnostics)
//===----------------------------------------------------------------------===//

TEST(MappedBundle, V3FedToV2ReaderFailsWithHint) {
  ModelBundle Original = trainBundle();
  std::stringstream Buffer(v3Bytes(Original));
  LoadDiag Diag;
  EXPECT_EQ(loadModel(Buffer, &Diag), nullptr);
  EXPECT_EQ(Diag.Offset, 4u);
  EXPECT_NE(Diag.Error.find("expected"), std::string::npos) << Diag.Error;
  EXPECT_NE(Diag.Error.find("migrate-bundle"), std::string::npos)
      << Diag.Error;
}

TEST(MappedBundle, V2FedToV3ReaderFailsWithHint) {
  ModelBundle Original = trainBundle();
  std::ostringstream V2;
  saveModel(V2, Original);
  LoadDiag Diag = expectRejected(V2.str());
  // A v2 stream is shorter than anything with a v3 section table, or
  // fails the version check at offset 4 — either way the diagnostic
  // carries expected-vs-found text.
  EXPECT_NE(Diag.Error.find("expected"), std::string::npos) << Diag.Error;
}

TEST(MappedBundle, BadMagicReportsExpectedAndFound) {
  ModelBundle Original = trainBundle();
  std::string Img = v3Bytes(Original);
  Img[0] = 'X';
  LoadDiag Diag = expectRejected(Img);
  EXPECT_EQ(Diag.Offset, 0u);
  EXPECT_NE(Diag.Error.find("0x50494742"), std::string::npos) << Diag.Error;
  EXPECT_NE(Diag.Error.find("found"), std::string::npos) << Diag.Error;
}

//===----------------------------------------------------------------------===//
// Hostile images
//===----------------------------------------------------------------------===//

TEST(MappedBundle, TruncationAnywhereIsRejected) {
  ModelBundle Original = trainBundle();
  std::string Img = v3Bytes(Original);
  for (size_t Keep :
       {size_t(0), size_t(7), size_t(47), size_t(359), Img.size() / 4,
        Img.size() / 2, Img.size() - 16, Img.size() - 1})
    expectRejected(Img.substr(0, Keep));
}

TEST(MappedBundle, TrailingGarbageIsRejected) {
  ModelBundle Original = trainBundle();
  expectRejected(v3Bytes(Original) + std::string(64, '\0'));
}

TEST(MappedBundle, MisalignedSectionIsRejected) {
  ModelBundle Original = trainBundle();
  for (uint32_t Sec = 0; Sec < 13; ++Sec) {
    std::string Img = v3Bytes(Original);
    uint64_t Off;
    std::memcpy(&Off, Img.data() + 48 + Sec * 24 + 8, 8);
    Off += 4; // Break 8-byte alignment but stay in bounds.
    std::memcpy(Img.data() + 48 + Sec * 24 + 8, &Off, 8);
    LoadDiag Diag = expectRejected(Img);
    EXPECT_NE(Diag.Error.find("align"), std::string::npos)
        << "section " << Sec << ": " << Diag.Error;
  }
}

TEST(MappedBundle, OverlappingSectionsAreRejected) {
  ModelBundle Original = trainBundle();
  std::string Img = v3Bytes(Original);
  // Point the string-offsets section back into the string arena.
  uint64_t ArenaOff;
  std::memcpy(&ArenaOff, Img.data() + 48 + 8, 8);
  std::memcpy(Img.data() + 48 + 24 + 8, &ArenaOff, 8);
  expectRejected(Img);
}

TEST(MappedBundle, CraftedOverflowingSectionBoundsAreRejected) {
  // Offset + length wrapping past UINT64_MAX must be caught by checked
  // arithmetic, not slip under the `end <= size` bound. One crafted
  // header per section.
  ModelBundle Original = trainBundle();
  for (uint32_t Sec = 0; Sec < 13; ++Sec) {
    std::string Img = v3Bytes(Original);
    // 2^64 - 8: 8-byte aligned, so only the checked add can reject it.
    uint64_t Off = UINT64_MAX - 7, Len = 64;
    std::memcpy(Img.data() + 48 + Sec * 24 + 8, &Off, 8);
    std::memcpy(Img.data() + 48 + Sec * 24 + 16, &Len, 8);
    LoadDiag Diag = expectRejected(Img);
    EXPECT_NE(Diag.Error.find("overflows"), std::string::npos)
        << "section " << Sec << ": " << Diag.Error;
  }
}

TEST(MappedBundle, ChecksumDamageIsRejectedWhenVerifying) {
  ModelBundle Original = trainBundle();
  std::string Img = v3Bytes(Original);
  // Flip one bit inside the string arena: structure stays valid, bytes
  // do not.
  uint64_t ArenaOff;
  std::memcpy(&ArenaOff, Img.data() + 48 + 8, 8);
  Img[ArenaOff + 3] ^= 0x20;
  LoadDiag Diag = expectRejected(Img);
  EXPECT_NE(Diag.Error.find("checksum"), std::string::npos) << Diag.Error;

  // Without verification the damaged-but-well-formed image still maps:
  // checksum verification is opt-in by design (it touches every page).
  TempFile File(Img);
  EXPECT_NE(openMappedBundle(File.path()), nullptr);
}

TEST(MappedBundle, BadTrailerMagicIsRejected) {
  ModelBundle Original = trainBundle();
  std::string Img = v3Bytes(Original);
  Img[Img.size() - 8] ^= 0xFF;
  LoadDiag Diag = expectRejected(Img);
  EXPECT_NE(Diag.Error.find("trailer"), std::string::npos) << Diag.Error;
}

TEST(MappedBundle, CorruptOffsetArraysAreRejected) {
  ModelBundle Original = trainBundle();
  // Non-monotonic string offsets.
  {
    std::string Img = v3Bytes(Original);
    uint64_t OffsetsOff;
    std::memcpy(&OffsetsOff, Img.data() + 48 + 24 + 8, 8);
    uint64_t Huge = UINT64_MAX / 2;
    std::memcpy(Img.data() + OffsetsOff + 8, &Huge, 8);
    expectRejected(Img);
  }
  // Stored string-index slot out of range.
  {
    std::string Img = v3Bytes(Original);
    uint64_t IndexOff, IndexLen;
    std::memcpy(&IndexOff, Img.data() + 48 + 2 * 24 + 8, 8);
    std::memcpy(&IndexLen, Img.data() + 48 + 2 * 24 + 16, 8);
    uint32_t Bogus = UINT32_MAX;
    for (uint64_t I = 0; I < IndexLen; I += 4)
      std::memcpy(Img.data() + IndexOff + I, &Bogus, 4);
    expectRejected(Img);
  }
}

TEST(MappedBundle, ZeroLengthArenasLoad) {
  // An untrained bundle has one (empty) string, no paths and no weights:
  // every variable-length section is zero-length, and the file must
  // still round-trip.
  ModelBundle Empty;
  Empty.Lang = Language::JavaScript;
  Empty.Interner = std::make_unique<StringInterner>();
  Empty.Extraction = tunedExtraction(Language::JavaScript,
                                     Task::VariableNames);
  Empty.TaskKind = Task::VariableNames;

  TempFile File(v3Bytes(Empty));
  LoadDiag Diag;
  auto Mapped = openMappedBundle(File.path(), &Diag, /*VerifyChecksum=*/true);
  ASSERT_NE(Mapped, nullptr) << Diag.Error;
  EXPECT_EQ(Mapped->Interner->size(), 1u);
  EXPECT_EQ(Mapped->Table.size(), 0u);
  EXPECT_EQ(Mapped->Model.numFeatures(), 0u);
  // And the empty frozen tables still accept growth.
  EXPECT_EQ(Mapped->Interner->intern("fresh").index(), 1u);
}

TEST(MappedBundle, EveryHeaderByteFlipFailsClosed) {
  // Fuzz-lite: flipping any single byte of the header + section table
  // either still loads (reserved bytes) or fails with a diagnostic —
  // never crashes. Under ASan/UBSan this doubles as an OOB probe.
  ModelBundle Original = trainBundle();
  std::string Pristine = v3Bytes(Original);
  for (size_t I = 0; I < 360; ++I) {
    std::string Img = Pristine;
    Img[I] ^= 0xFF;
    TempFile File(Img);
    LoadDiag Diag;
    auto Bundle = openMappedBundle(File.path(), &Diag,
                                   /*VerifyChecksum=*/true);
    if (Bundle)
      EXPECT_FALSE(signatureOf(*Bundle, MinifiedJs).empty());
    else
      EXPECT_FALSE(Diag.Error.empty()) << "byte " << I;
  }
}

} // namespace
