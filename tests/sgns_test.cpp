//===- sgns_test.cpp - Unit tests for word2vec/SGNS ------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/word2vec/Sgns.h"

#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace pigeon;
using namespace pigeon::w2v;

namespace {

/// Builds a corpus where word w co-occurs with contexts
/// {3w, 3w+1, 3w+2}: each word has its own disjoint context triple, so a
/// trained model must recover words from their contexts perfectly.
std::vector<Pair> disjointCorpus(uint32_t Words, int Repeats) {
  std::vector<Pair> Pairs;
  for (int R = 0; R < Repeats; ++R)
    for (uint32_t W = 0; W < Words; ++W)
      for (uint32_t C = 0; C < 3; ++C)
        Pairs.push_back({W, 3 * W + C});
  return Pairs;
}

TEST(Sgns, PredictsWordsFromDisjointContexts) {
  SgnsConfig Config;
  Config.Dim = 16;
  Config.Epochs = 30;
  Sgns Model(Config);
  Model.train(disjointCorpus(4, 10), 4, 12);
  for (uint32_t W = 0; W < 4; ++W) {
    std::vector<uint32_t> Ctx = {3 * W, 3 * W + 1, 3 * W + 2};
    EXPECT_EQ(Model.predict(Ctx), W) << "word " << W;
  }
}

TEST(Sgns, PredictFromPartialContext) {
  SgnsConfig Config;
  Config.Dim = 16;
  Config.Epochs = 30;
  Sgns Model(Config);
  Model.train(disjointCorpus(4, 10), 4, 12);
  std::vector<uint32_t> Ctx = {3 * 2};
  EXPECT_EQ(Model.predict(Ctx), 2u);
}

TEST(Sgns, TopKOrdersByScore) {
  SgnsConfig Config;
  Config.Dim = 16;
  Config.Epochs = 20;
  Sgns Model(Config);
  Model.train(disjointCorpus(5, 10), 5, 15);
  std::vector<uint32_t> Ctx = {3 * 1, 3 * 1 + 1};
  auto Top = Model.topK(Ctx, 3);
  ASSERT_EQ(Top.size(), 3u);
  EXPECT_EQ(Top[0].first, 1u);
  EXPECT_GE(Top[0].second, Top[1].second);
  EXPECT_GE(Top[1].second, Top[2].second);
}

TEST(Sgns, SimilarWordsFindSharedContextWords) {
  // Words 0 and 1 share all contexts; word 2 lives elsewhere.
  std::vector<Pair> Pairs;
  for (int R = 0; R < 40; ++R) {
    for (uint32_t C = 0; C < 3; ++C) {
      Pairs.push_back({0, C});
      Pairs.push_back({1, C});
      Pairs.push_back({2, C + 3});
    }
  }
  SgnsConfig Config;
  Config.Dim = 16;
  Config.Epochs = 20;
  Sgns Model(Config);
  Model.train(Pairs, 3, 6);
  auto Similar = Model.similarWords(0, 2);
  ASSERT_EQ(Similar.size(), 2u);
  EXPECT_EQ(Similar[0].first, 1u)
      << "words with identical contexts must embed closest";
}

TEST(Sgns, DeterministicWithFixedSeed) {
  SgnsConfig Config;
  Config.Dim = 8;
  Config.Epochs = 5;
  Sgns A(Config), B(Config);
  auto Corpus = disjointCorpus(3, 5);
  A.train(Corpus, 3, 9);
  B.train(Corpus, 3, 9);
  for (uint32_t W = 0; W < 3; ++W) {
    auto VA = A.wordVector(W);
    auto VB = B.wordVector(W);
    for (size_t I = 0; I < VA.size(); ++I)
      EXPECT_FLOAT_EQ(VA[I], VB[I]);
  }
}

TEST(Sgns, DifferentSeedsDiffer) {
  SgnsConfig C1, C2;
  C1.Dim = C2.Dim = 8;
  C2.Seed = C1.Seed + 1;
  Sgns A(C1), B(C2);
  auto Corpus = disjointCorpus(3, 5);
  A.train(Corpus, 3, 9);
  B.train(Corpus, 3, 9);
  bool AnyDiff = false;
  auto VA = A.wordVector(0);
  auto VB = B.wordVector(0);
  for (size_t I = 0; I < VA.size(); ++I)
    AnyDiff |= (VA[I] != VB[I]);
  EXPECT_TRUE(AnyDiff);
}

TEST(Sgns, EmptyTrainingIsSafe) {
  Sgns Model;
  Model.train({}, 0, 0);
  EXPECT_EQ(Model.predict(std::vector<uint32_t>{}), UINT32_MAX);
  EXPECT_TRUE(Model.topK(std::vector<uint32_t>{}, 5).empty());
}

TEST(Sgns, EmptyContextsPredictNothing) {
  SgnsConfig Config;
  Config.Dim = 8;
  Sgns Model(Config);
  Model.train(disjointCorpus(2, 3), 2, 6);
  EXPECT_EQ(Model.predict(std::vector<uint32_t>{}), UINT32_MAX);
}

TEST(Sgns, NegativeCollisionsAreRedrawnNotDropped) {
  // A single-word vocabulary makes *every* noise draw collide with the
  // positive word: training must neither spin forever nor blow up, and
  // the collisions must be visible in telemetry.
  auto &Reg = telemetry::MetricsRegistry::global();
  uint64_t Before = Reg.counter("sgns.negative.collisions").value();
  SgnsConfig Config;
  Config.Dim = 8;
  Config.Epochs = 3;
  Sgns Model(Config);
  std::vector<Pair> Pairs = {{0, 0}, {0, 1}, {0, 0}};
  Model.train(Pairs, 1, 2);
  EXPECT_GT(Reg.counter("sgns.negative.collisions").value(), Before);
  for (float V : Model.wordVector(0))
    EXPECT_TRUE(std::isfinite(V));
}

TEST(Sgns, RedrawKeepsDisjointRecoveryIntact) {
  // With a real multi-word vocabulary the redraw only swaps which noise
  // word absorbs each colliding draw; the separable corpus must still be
  // recovered perfectly.
  SgnsConfig Config;
  Config.Dim = 16;
  Config.Epochs = 30;
  Sgns Model(Config);
  Model.train(disjointCorpus(3, 10), 3, 9);
  for (uint32_t W = 0; W < 3; ++W) {
    std::vector<uint32_t> Ctx = {3 * W, 3 * W + 1, 3 * W + 2};
    EXPECT_EQ(Model.predict(Ctx), W) << "word " << W;
  }
}

TEST(Sgns, VectorDimensionsMatchConfig) {
  SgnsConfig Config;
  Config.Dim = 24;
  Sgns Model(Config);
  Model.train(disjointCorpus(2, 3), 2, 6);
  EXPECT_EQ(Model.wordVector(0).size(), 24u);
  EXPECT_EQ(Model.dim(), 24);
}

} // namespace
