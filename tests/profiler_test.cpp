//===- profiler_test.cpp - Unit tests for support/PhaseProfiler ------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/PhaseProfiler.h"

#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

using namespace pigeon;
using namespace pigeon::telemetry;

namespace {

/// Ticks attributed to \p Phase, alone or as the outermost frame of a
/// deeper folded stack.
uint64_t countFor(const PhaseProfiler::Report &R, const std::string &Phase) {
  uint64_t Total = 0;
  for (const PhaseProfiler::FoldedLine &L : R.Lines)
    if (L.Stack == Phase || L.Stack.rfind(Phase + ";", 0) == 0)
      Total += L.Count;
  return Total;
}

/// Busy-spins until the sampler has attributed \p Target ticks to
/// \p Phase (or a generous deadline passes — the assertion then fails
/// loudly rather than the test hanging). Spinning, not sleeping: the
/// profiler measures wall time spent *in* the phase.
void spinUntilTicks(const std::string &Phase, uint64_t Target) {
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  volatile uint64_t Sink = 0;
  while (std::chrono::steady_clock::now() < Deadline) {
    for (int I = 0; I < 200000; ++I)
      Sink += static_cast<uint64_t>(I);
    if (countFor(PhaseProfiler::global().report(), Phase) >= Target)
      return;
  }
}

} // namespace

TEST(Profiler, PushPopCaptureRoundTrip) {
  ASSERT_TRUE(profilerCaptureStack().empty());
  profilerPushFrame("pp.outer");
  profilerPushFrame("pp.inner");
  std::vector<const char *> Stack = profilerCaptureStack();
  ASSERT_EQ(Stack.size(), 2u);
  EXPECT_STREQ(Stack[0], "pp.outer");
  EXPECT_STREQ(Stack[1], "pp.inner");
  // Names are interned: capturing again yields the same pointers.
  std::vector<const char *> Again = profilerCaptureStack();
  EXPECT_EQ(Stack[0], Again[0]);
  EXPECT_EQ(Stack[1], Again[1]);
  profilerPopFrame();
  profilerPopFrame();
  EXPECT_TRUE(profilerCaptureStack().empty());
}

TEST(Profiler, DeepRecursionDegradesGracefully) {
  // Past the fixed depth limit only the depth is tracked; pushes and
  // pops still balance and nothing overflows.
  const int Deep = 60;
  for (int I = 0; I < Deep; ++I)
    profilerPushFrame("pp.deep");
  std::vector<const char *> Stack = profilerCaptureStack();
  EXPECT_LE(Stack.size(), 48u);
  for (const char *F : Stack)
    EXPECT_STREQ(F, "pp.deep");
  for (int I = 0; I < Deep; ++I)
    profilerPopFrame();
  EXPECT_TRUE(profilerCaptureStack().empty());
}

TEST(Profiler, StackGuardInstallsSpawnerStackOnWorker) {
  profilerPushFrame("pp.spawner");
  std::vector<const char *> Spawner = profilerCaptureStack();
  ASSERT_EQ(Spawner.size(), 1u);

  // A worker thread (empty own stack) temporarily adopts the spawner's
  // stack; nested frames fold underneath it; destruction restores the
  // worker to its pre-guard depth.
  std::thread Worker([&Spawner] {
    EXPECT_TRUE(profilerCaptureStack().empty());
    {
      ProfilerStackGuard Guard(Spawner);
      std::vector<const char *> Installed = profilerCaptureStack();
      ASSERT_EQ(Installed.size(), 1u);
      EXPECT_EQ(Installed[0], Spawner[0]); // Same interned pointer.
      profilerPushFrame("pp.worker");
      EXPECT_EQ(profilerCaptureStack().size(), 2u);
      profilerPopFrame();
    }
    EXPECT_TRUE(profilerCaptureStack().empty());
  });
  Worker.join();

  // The caller-executor case: installing a thread's own captured stack
  // over itself is a no-op.
  {
    ProfilerStackGuard Guard(Spawner);
    std::vector<const char *> Same = profilerCaptureStack();
    ASSERT_EQ(Same.size(), 1u);
    EXPECT_EQ(Same[0], Spawner[0]);
  }
  ASSERT_EQ(profilerCaptureStack().size(), 1u);
  profilerPopFrame();
}

TEST(Profiler, StartStopResetLifecycle) {
  PhaseProfiler &P = PhaseProfiler::global();
  EXPECT_FALSE(P.running());
  P.start(50.0);
  EXPECT_TRUE(P.running());
  EXPECT_EQ(P.hz(), 50.0);
  P.start(500.0); // Idempotent while running: first rate wins.
  EXPECT_EQ(P.hz(), 50.0);
  P.stop();
  EXPECT_FALSE(P.running());
  P.stop(); // Idempotent when stopped.
  P.reset();
  PhaseProfiler::Report R = P.report();
  EXPECT_EQ(R.Samples, 0u);
  EXPECT_EQ(R.Attributed, 0u);
  EXPECT_TRUE(R.Lines.empty());
}

// The acceptance-criteria pin: a two-phase workload with a 3:1 duration
// split attributes more ticks to the long phase, and the overwhelming
// majority of busy samples land in *some* named phase.
TEST(Profiler, SamplerAttributesTwoPhaseWorkload) {
  PhaseProfiler &P = PhaseProfiler::global();
  P.start(250.0);
  P.reset();

  {
    TraceScope Alpha("profiler.test.alpha");
    spinUntilTicks("profiler.test.alpha", 60);
  }
  {
    TraceScope Beta("profiler.test.beta");
    spinUntilTicks("profiler.test.beta", 20);
  }

  P.stop();
  PhaseProfiler::Report R = P.report();

  uint64_t AlphaTicks = countFor(R, "profiler.test.alpha");
  uint64_t BetaTicks = countFor(R, "profiler.test.beta");
  ASSERT_GE(AlphaTicks, 60u);
  ASSERT_GE(BetaTicks, 20u);
  EXPECT_GT(AlphaTicks, BetaTicks);

  // This test's only busy thread spends essentially all its wall time
  // inside a TraceScope, so nearly every sample must be attributed (the
  // few stragglers are ticks between the scopes / before stop()).
  ASSERT_GT(R.Samples, 0u);
  double Ratio = static_cast<double>(R.Attributed) /
                 static_cast<double>(R.Samples);
  EXPECT_GE(Ratio, 0.9);

  // Folded rendering: `stack count` lines, flamegraph.pl-compatible.
  std::string Folded = P.folded();
  ASSERT_FALSE(Folded.empty());
  std::istringstream Lines(Folded);
  std::string Line;
  bool SawAlpha = false;
  while (std::getline(Lines, Line)) {
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    ASSERT_GT(Space, 0u) << Line;
    std::string Count = Line.substr(Space + 1);
    ASSERT_FALSE(Count.empty()) << Line;
    EXPECT_EQ(Count.find_first_not_of("0123456789"), std::string::npos)
        << Line;
    if (Line.compare(0, Space, "profiler.test.alpha") == 0)
      SawAlpha = true;
  }
  EXPECT_TRUE(SawAlpha);
}

TEST(Profiler, NestedScopesProduceFoldedStacks) {
  PhaseProfiler &P = PhaseProfiler::global();
  P.start(250.0);
  P.reset();
  {
    TraceScope Outer("pp.nest.outer");
    TraceScope Inner("pp.nest.inner");
    spinUntilTicks("pp.nest.outer", 10);
  }
  P.stop();
  PhaseProfiler::Report R = P.report();
  uint64_t Nested = 0;
  for (const PhaseProfiler::FoldedLine &L : R.Lines)
    if (L.Stack == "pp.nest.outer;pp.nest.inner")
      Nested = L.Count;
  EXPECT_GE(Nested, 10u);
}

TEST(Profiler, WriteFoldedRoundTrips) {
  PhaseProfiler &P = PhaseProfiler::global();
  P.start(250.0);
  P.reset();
  {
    TraceScope Phase("pp.write");
    spinUntilTicks("pp.write", 5);
  }
  P.stop();

  const std::string Path = "profiler_test_folded.tmp";
  ASSERT_TRUE(P.writeFolded(Path));
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good());
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  EXPECT_EQ(Buffer.str(), P.folded());
  EXPECT_NE(Buffer.str().find("pp.write"), std::string::npos);
  In.close();
  std::remove(Path.c_str());

  EXPECT_FALSE(P.writeFolded("/nonexistent-dir/folded.txt"));
}
