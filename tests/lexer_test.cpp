//===- lexer_test.cpp - Unit tests for the configurable lexer --------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/common/Lexer.h"

#include <gtest/gtest.h>

using namespace pigeon;
using namespace pigeon::lang;

namespace {

LexerConfig basicConfig() {
  LexerConfig C;
  C.Keywords = {"if", "while", "def", "return"};
  C.Punctuators = {"==", "+=", "(", ")", "[", "]", "{", "}",
                   "=",  "+",  ",", ":", ";", ".", "<"};
  C.SlashSlashComments = true;
  C.SlashStarComments = true;
  return C;
}

std::vector<Token> lex(std::string_view Src, const LexerConfig &C,
                       Diagnostics &D) {
  Lexer L(Src, C, D);
  return L.lexAll();
}

std::vector<Token> lexOk(std::string_view Src, const LexerConfig &C) {
  Diagnostics D(Src);
  auto Toks = lex(Src, C, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  return Toks;
}

TEST(Lexer, EmptyInputIsJustEof) {
  auto T = lexOk("", basicConfig());
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T[0].is(TokenKind::Eof));
}

TEST(Lexer, IdentifiersAndKeywords) {
  auto T = lexOk("if foo while bar", basicConfig());
  ASSERT_EQ(T.size(), 5u);
  EXPECT_TRUE(T[0].is(TokenKind::Keyword));
  EXPECT_TRUE(T[1].is(TokenKind::Identifier));
  EXPECT_EQ(T[1].Text, "foo");
  EXPECT_TRUE(T[2].is(TokenKind::Keyword));
  EXPECT_TRUE(T[3].is(TokenKind::Identifier));
}

TEST(Lexer, IntAndFloatLiterals) {
  auto T = lexOk("42 3.14 1e6 0x1F 2.5e-3", basicConfig());
  EXPECT_TRUE(T[0].is(TokenKind::IntLiteral));
  EXPECT_TRUE(T[1].is(TokenKind::FloatLiteral));
  EXPECT_TRUE(T[2].is(TokenKind::FloatLiteral));
  EXPECT_TRUE(T[3].is(TokenKind::IntLiteral));
  EXPECT_EQ(T[3].Text, "0x1F");
  EXPECT_TRUE(T[4].is(TokenKind::FloatLiteral));
}

TEST(Lexer, NumericSuffixes) {
  auto T = lexOk("10L 2.0f", basicConfig());
  EXPECT_TRUE(T[0].is(TokenKind::IntLiteral));
  EXPECT_EQ(T[0].Text, "10L");
  EXPECT_TRUE(T[1].is(TokenKind::FloatLiteral));
}

TEST(Lexer, DotAfterIntIsNotFloatWithoutDigit) {
  auto T = lexOk("a.b", basicConfig());
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(T[1].Text, ".");
}

TEST(Lexer, LongestMatchPunctuation) {
  auto T = lexOk("== = + +=", basicConfig());
  EXPECT_EQ(T[0].Text, "==");
  EXPECT_EQ(T[1].Text, "=");
  EXPECT_EQ(T[2].Text, "+");
  EXPECT_EQ(T[3].Text, "+=");
}

TEST(Lexer, StringLiterals) {
  auto T = lexOk("\"hello\" 'world'", basicConfig());
  EXPECT_TRUE(T[0].is(TokenKind::StringLiteral));
  EXPECT_EQ(T[0].stringValue(), "hello");
  EXPECT_TRUE(T[1].is(TokenKind::StringLiteral));
  EXPECT_EQ(T[1].stringValue(), "world");
}

TEST(Lexer, EscapedQuoteInsideString) {
  auto T = lexOk("'a\\'b'", basicConfig());
  EXPECT_TRUE(T[0].is(TokenKind::StringLiteral));
  EXPECT_EQ(T[0].stringValue(), "a\\'b");
}

TEST(Lexer, UnterminatedStringReportsError) {
  Diagnostics D("'abc");
  lex("'abc", basicConfig(), D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(Lexer, LineCommentsSkipped) {
  auto T = lexOk("a // comment\nb", basicConfig());
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
}

TEST(Lexer, BlockCommentsSkipped) {
  auto T = lexOk("a /* x\ny */ b", basicConfig());
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[1].Text, "b");
}

TEST(Lexer, UnterminatedBlockCommentReportsError) {
  Diagnostics D("/* oops");
  lex("/* oops", basicConfig(), D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(Lexer, HashCommentsWhenEnabled) {
  LexerConfig C = basicConfig();
  C.HashComments = true;
  C.SlashSlashComments = false;
  auto T = lexOk("a # comment\nb", C);
  ASSERT_EQ(T.size(), 3u);
}

TEST(Lexer, UnknownCharacterReportsErrorToken) {
  Diagnostics D("a ` b");
  auto T = lex("a ` b", basicConfig(), D);
  EXPECT_TRUE(D.hasErrors());
  bool SawError = false;
  for (const Token &Tok : T)
    SawError |= Tok.is(TokenKind::Error);
  EXPECT_TRUE(SawError);
}

TEST(Lexer, OffsetsAreByteAccurate) {
  auto T = lexOk("ab cd", basicConfig());
  EXPECT_EQ(T[0].Offset, 0u);
  EXPECT_EQ(T[1].Offset, 3u);
}

TEST(Lexer, DiagnosticLineAndColumn) {
  Diagnostics D("ok\n  'x");
  lex("ok\n  'x", basicConfig(), D);
  ASSERT_TRUE(D.hasErrors());
  EXPECT_EQ(D.all()[0].Line, 2u);
  EXPECT_EQ(D.all()[0].Column, 3u);
}

//===----------------------------------------------------------------------===//
// Indentation-sensitive mode
//===----------------------------------------------------------------------===//

LexerConfig pyConfig() {
  LexerConfig C = basicConfig();
  C.SignificantIndentation = true;
  C.HashComments = true;
  C.SlashSlashComments = false;
  C.SlashStarComments = false;
  return C;
}

std::string kinds(const std::vector<Token> &Toks) {
  std::string Out;
  for (const Token &T : Toks) {
    if (!Out.empty())
      Out += ' ';
    switch (T.Kind) {
    case TokenKind::Newline:
      Out += "NL";
      break;
    case TokenKind::Indent:
      Out += "IN";
      break;
    case TokenKind::Dedent:
      Out += "DE";
      break;
    case TokenKind::Eof:
      Out += "EOF";
      break;
    default:
      Out += T.Text;
    }
  }
  return Out;
}

TEST(LexerIndent, SimpleBlock) {
  auto T = lexOk("def f():\n    return\n", pyConfig());
  EXPECT_EQ(kinds(T), "def f ( ) : NL IN return NL DE EOF");
}

TEST(LexerIndent, NestedBlocks) {
  auto T = lexOk("if a:\n  if b:\n    c\nd\n", pyConfig());
  EXPECT_EQ(kinds(T), "if a : NL IN if b : NL IN c NL DE DE d NL EOF");
}

TEST(LexerIndent, BlankLinesDoNotAffectIndentation) {
  auto T = lexOk("if a:\n  b\n\n  c\n", pyConfig());
  EXPECT_EQ(kinds(T), "if a : NL IN b NL c NL DE EOF");
}

TEST(LexerIndent, CommentOnlyLinesIgnored) {
  auto T = lexOk("if a:\n  b\n# comment\n  c\n", pyConfig());
  EXPECT_EQ(kinds(T), "if a : NL IN b NL c NL DE EOF");
}

TEST(LexerIndent, BracketsSuppressNewlines) {
  auto T = lexOk("f(a,\n   b)\nc\n", pyConfig());
  EXPECT_EQ(kinds(T), "f ( a , b ) NL c NL EOF");
}

TEST(LexerIndent, DedentAtEofClosesAllLevels) {
  auto T = lexOk("if a:\n  if b:\n    c", pyConfig());
  EXPECT_EQ(kinds(T), "if a : NL IN if b : NL IN c NL DE DE EOF");
}

TEST(LexerIndent, MissingFinalNewlineStillEmitsNewline) {
  auto T = lexOk("a", pyConfig());
  EXPECT_EQ(kinds(T), "a NL EOF");
}

TEST(LexerIndent, InconsistentDedentReportsError) {
  Diagnostics D("if a:\n    b\n  c\n");
  lex("if a:\n    b\n  c\n", pyConfig(), D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(LexerIndent, TabsCountAsEightColumns) {
  auto T = lexOk("if a:\n\tb\nc\n", pyConfig());
  EXPECT_EQ(kinds(T), "if a : NL IN b NL DE c NL EOF");
}

TEST(LexerGuards, StringValueOnNonStringIsDefined) {
  // Promoted precondition: calling stringValue() on a non-string token was
  // a Release-stripped assert followed by quote-stripping garbage. It must
  // now be defined behavior — the raw text comes back untouched.
  auto T = lexOk("abc", basicConfig());
  ASSERT_FALSE(T.empty());
  EXPECT_EQ(T[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(T[0].stringValue(), "abc");

  auto S = lexOk("'xy'", basicConfig());
  ASSERT_FALSE(S.empty());
  EXPECT_EQ(S[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(S[0].stringValue(), "xy");
}

} // namespace
