#!/bin/sh
# CLI error-path regression test. Every failure mode here used to be
# silent before the stream-open hardening: a missing model/contexts file
# fell through to a garbage read, an unwritable --out produced a
# zero-byte artifact with exit 0, and an empty eval printed a bare
# "accuracy 0.0%". Run as: cli_errors_test.sh <path-to-pigeon-binary>.
set -u

PIGEON="$1"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# 1. predict against a model path that does not exist: nonzero exit and
#    a strerror()-bearing diagnostic, not a bad-stream read.
echo 'var x = 1;' > "$TMP/a.js"
if "$PIGEON" predict --model "$TMP/no-such-model.bin" "$TMP/a.js" \
    > /dev/null 2> "$TMP/err1"; then
  fail "predict with a missing model exited 0"
fi
grep -q "cannot read $TMP/no-such-model.bin" "$TMP/err1" \
  || fail "predict error lacks the failing path: $(cat "$TMP/err1")"
grep -q "No such file or directory" "$TMP/err1" \
  || fail "predict error lacks strerror text: $(cat "$TMP/err1")"

# 2. eval / train with a missing contexts artifact: same contract.
for CMD in "eval --model $TMP/no-such.bin --from-contexts $TMP/no-such.ctx" \
           "train --from-contexts $TMP/no-such.ctx --out $TMP/m.bin"; do
  if "$PIGEON" $CMD > /dev/null 2> "$TMP/err2"; then
    fail "'pigeon $CMD' exited 0"
  fi
  grep -q "No such file or directory" "$TMP/err2" \
    || fail "'pigeon $CMD' error lacks strerror text: $(cat "$TMP/err2")"
done

# A small trained bundle for the write-path and empty-eval checks.
"$PIGEON" synth --lang js --out "$TMP/corpus" --projects 3 --seed 7 \
  > /dev/null 2>&1 || fail "synth failed"
"$PIGEON" train --lang js --task vars --out "$TMP/model.bin" "$TMP/corpus" \
  > /dev/null 2>&1 || fail "train failed"

# 3. train --out into a directory that does not exist: the save must
#    report the failed open instead of pretending the bundle was written.
if "$PIGEON" train --lang js --task vars --out "$TMP/no-dir/model.bin" \
    "$TMP/corpus" > /dev/null 2> "$TMP/err3"; then
  fail "train with unwritable --out exited 0"
fi
grep -q "cannot write $TMP/no-dir/model.bin" "$TMP/err3" \
  || fail "train write error lacks the failing path: $(cat "$TMP/err3")"

# 4. eval over a corpus with nothing to predict: explicit n=0 note on
#    stdout, an explanatory error on stderr, and a nonzero exit — never
#    a fake "accuracy 0.0%".
echo 'function f() { return 1 + 2; }' > "$TMP/novars.js"
if "$PIGEON" eval --model "$TMP/model.bin" --lang js "$TMP/novars.js" \
    > "$TMP/out4" 2> "$TMP/err4"; then
  fail "eval with zero predictable elements exited 0"
fi
grep -q "accuracy n/a (n=0)" "$TMP/out4" \
  || fail "empty eval stdout lacks the n=0 note: $(cat "$TMP/out4")"
grep -q "no elements to evaluate" "$TMP/err4" \
  || fail "empty eval stderr lacks the explanation: $(cat "$TMP/err4")"

echo "PASS"
