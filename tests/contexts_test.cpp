//===- contexts_test.cpp - Unit tests for the contexts artifact ------------===//
//
// Part of the PIGEON project, under the MIT License.
//
// The contract under test: a `pigeon.contexts.v1` artifact round-trips
// bit-exactly, its records rebuild CRF graphs identical to tree-based
// assembly, and extraction into an artifact is invariant under the worker
// thread count.
//
//===----------------------------------------------------------------------===//

#include "core/ContextsIO.h"
#include "core/ModelIO.h"

#include "datagen/Sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

Corpus makeCorpus(uint64_t Seed = 11, int Projects = 5) {
  datagen::CorpusSpec Spec = datagen::defaultSpec(Language::JavaScript, Seed);
  Spec.NumProjects = Projects;
  std::vector<datagen::SourceFile> Sources = datagen::generateCorpus(Spec);
  Corpus C = parseCorpus(Sources, Language::JavaScript);
  EXPECT_GT(C.Files.size(), 0u);
  return C;
}

CrfExperimentOptions varsOptions(bool Tri = false) {
  CrfExperimentOptions Options;
  Options.Extraction =
      tunedExtraction(Language::JavaScript, Task::VariableNames);
  Options.TriContexts = Tri;
  return Options;
}

void expectArtifactsEqual(const ContextsArtifact &A,
                          const ContextsArtifact &B) {
  EXPECT_EQ(A.Lang, B.Lang);
  EXPECT_EQ(A.TaskKind, B.TaskKind);
  EXPECT_EQ(A.Repr, B.Repr);
  EXPECT_EQ(A.TriContexts, B.TriContexts);
  EXPECT_EQ(A.Extraction.MaxLength, B.Extraction.MaxLength);
  EXPECT_EQ(A.Extraction.MaxWidth, B.Extraction.MaxWidth);
  EXPECT_EQ(A.Extraction.Abst, B.Extraction.Abst);
  EXPECT_EQ(A.Extraction.IncludeSemiPaths, B.Extraction.IncludeSemiPaths);

  ASSERT_EQ(A.Interner->size(), B.Interner->size());
  for (uint32_t I = 1; I < A.Interner->size(); ++I)
    EXPECT_EQ(A.Interner->str(Symbol::fromIndex(I)),
              B.Interner->str(Symbol::fromIndex(I)));

  ASSERT_EQ(A.Table.size(), B.Table.size());
  for (paths::PathId Id = 1; Id <= A.Table.size(); ++Id) {
    auto ABytes = A.Table.bytes(Id);
    auto BBytes = B.Table.bytes(Id);
    ASSERT_EQ(ABytes.size(), BBytes.size()) << "path " << Id;
    EXPECT_TRUE(std::equal(ABytes.begin(), ABytes.end(), BBytes.begin()))
        << "path " << Id;
  }

  ASSERT_EQ(A.Files.size(), B.Files.size());
  for (size_t F = 0; F < A.Files.size(); ++F) {
    const FileRecord &FA = A.Files[F];
    const FileRecord &FB = B.Files[F];
    EXPECT_EQ(FA.Project, FB.Project);
    EXPECT_EQ(FA.FileName, FB.FileName);
    ASSERT_EQ(FA.Elements.size(), FB.Elements.size());
    for (size_t E = 0; E < FA.Elements.size(); ++E) {
      EXPECT_EQ(FA.Elements[E].Name, FB.Elements[E].Name);
      EXPECT_EQ(FA.Elements[E].Kind, FB.Elements[E].Kind);
      EXPECT_EQ(FA.Elements[E].Predictable, FB.Elements[E].Predictable);
    }
    ASSERT_EQ(FA.Contexts.size(), FB.Contexts.size());
    for (size_t I = 0; I < FA.Contexts.size(); ++I) {
      const ContextRecord &CA = FA.Contexts[I];
      const ContextRecord &CB = FB.Contexts[I];
      EXPECT_EQ(CA.Path, CB.Path);
      EXPECT_EQ(CA.StartElem, CB.StartElem);
      EXPECT_EQ(CA.StartValue, CB.StartValue);
      EXPECT_EQ(CA.EndElem, CB.EndElem);
      EXPECT_EQ(CA.EndValue, CB.EndValue);
      EXPECT_EQ(CA.Semi, CB.Semi);
    }
    ASSERT_EQ(FA.Tris.size(), FB.Tris.size());
    for (size_t I = 0; I < FA.Tris.size(); ++I) {
      EXPECT_EQ(FA.Tris[I].Path, FB.Tris[I].Path);
      for (int E = 0; E < 3; ++E) {
        EXPECT_EQ(FA.Tris[I].Elem[E], FB.Tris[I].Elem[E]);
        EXPECT_EQ(FA.Tris[I].Value[E], FB.Tris[I].Value[E]);
      }
    }
  }
}

void expectGraphsEqual(const crf::CrfGraph &A, const crf::CrfGraph &B) {
  ASSERT_EQ(A.Nodes.size(), B.Nodes.size());
  for (size_t N = 0; N < A.Nodes.size(); ++N) {
    EXPECT_EQ(A.Nodes[N].Gold, B.Nodes[N].Gold) << "node " << N;
    EXPECT_EQ(A.Nodes[N].Known, B.Nodes[N].Known) << "node " << N;
    EXPECT_EQ(A.Nodes[N].Element, B.Nodes[N].Element) << "node " << N;
  }
  ASSERT_EQ(A.Factors.size(), B.Factors.size());
  for (size_t F = 0; F < A.Factors.size(); ++F) {
    EXPECT_EQ(A.Factors[F].A, B.Factors[F].A) << "factor " << F;
    EXPECT_EQ(A.Factors[F].B, B.Factors[F].B) << "factor " << F;
    EXPECT_EQ(A.Factors[F].Path, B.Factors[F].Path) << "factor " << F;
    EXPECT_EQ(A.Factors[F].Unary, B.Factors[F].Unary) << "factor " << F;
  }
  EXPECT_EQ(A.Unknowns, B.Unknowns);
}

TEST(ContextsArtifact, RoundTripsExactly) {
  Corpus C = makeCorpus();
  ContextsArtifact Original =
      buildContextsArtifact(C, Task::VariableNames, varsOptions(/*Tri=*/true));
  ASSERT_GT(Original.Table.size(), 0u);

  std::stringstream Buffer;
  saveContexts(Buffer, Original);
  std::unique_ptr<ContextsArtifact> Restored = loadContexts(Buffer);
  ASSERT_NE(Restored, nullptr);
  expectArtifactsEqual(Original, *Restored);
}

TEST(ContextsArtifact, RecordGraphsMatchTreeGraphs) {
  Corpus C = makeCorpus();
  CrfExperimentOptions Options = varsOptions();
  ContextsArtifact Art =
      buildContextsArtifact(C, Task::VariableNames, Options);

  crf::ElementSelector Selector = selectorFor(Task::VariableNames);
  size_t GraphsWithUnknowns = 0;
  for (size_t F = 0; F < C.Files.size(); ++F) {
    // Re-extracting against the artifact's (fully populated) table hits
    // only existing entries, so PathIds line up with the records.
    auto Contexts = paths::extractPathContexts(C.Files[F].Tree,
                                               Options.Extraction, Art.Table);
    crf::CrfGraph FromTree =
        crf::buildGraph(C.Files[F].Tree, Contexts, Selector);
    crf::CrfGraph FromRecord = buildGraphFromRecord(Art.Files[F], Selector);
    expectGraphsEqual(FromTree, FromRecord);
    if (!FromTree.Unknowns.empty())
      ++GraphsWithUnknowns;
  }
  EXPECT_GT(GraphsWithUnknowns, 0u); // The corpus exercised the selector.
}

TEST(ContextsArtifact, RecordTriFactorsMatchTreeTriFactors) {
  Corpus C = makeCorpus();
  CrfExperimentOptions Options = varsOptions(/*Tri=*/true);
  ContextsArtifact Art =
      buildContextsArtifact(C, Task::VariableNames, Options);

  crf::ElementSelector Selector = selectorFor(Task::VariableNames);
  size_t TriFactors = 0;
  for (size_t F = 0; F < C.Files.size(); ++F) {
    auto Contexts = paths::extractPathContexts(C.Files[F].Tree,
                                               Options.Extraction, Art.Table);
    auto Tris = paths::extractTriContexts(C.Files[F].Tree, Options.Extraction,
                                          Art.Table);
    crf::CrfGraph FromTree =
        crf::buildGraph(C.Files[F].Tree, Contexts, Selector);
    crf::addTriFactors(FromTree, C.Files[F].Tree, Tris, Selector,
                       *Art.Interner);
    crf::CrfGraph FromRecord = buildGraphFromRecord(Art.Files[F], Selector);
    addTriFactorsFromRecord(FromRecord, Art.Files[F], Selector,
                            *Art.Interner);
    expectGraphsEqual(FromTree, FromRecord);
    TriFactors += FromTree.Factors.size();
  }
  EXPECT_GT(TriFactors, 0u);
}

TEST(ContextsArtifact, SerializationIsThreadCountInvariant) {
  std::string Streams[3];
  size_t ThreadCounts[3] = {1, 2, 4};
  for (int I = 0; I < 3; ++I) {
    Corpus C = makeCorpus();
    CrfExperimentOptions Options = varsOptions(/*Tri=*/true);
    Options.Threads = ThreadCounts[I];
    ContextsArtifact Art =
        buildContextsArtifact(C, Task::VariableNames, Options);
    std::stringstream Buffer;
    saveContexts(Buffer, Art);
    Streams[I] = Buffer.str();
  }
  EXPECT_EQ(Streams[0], Streams[1]);
  EXPECT_EQ(Streams[0], Streams[2]);
}

TEST(ContextsArtifact, RebaseIntoEmptySpaceIsFaithful) {
  Corpus C = makeCorpus();
  ContextsArtifact Art =
      buildContextsArtifact(C, Task::VariableNames, varsOptions());

  // Snapshot rendered paths and element names in the artifact's space.
  std::vector<std::string> PathsBefore;
  for (paths::PathId Id = 1; Id <= Art.Table.size(); ++Id)
    PathsBefore.push_back(Art.Table.render(Id, *Art.Interner));
  std::string FirstName;
  for (const FileRecord &Rec : Art.Files)
    if (!Rec.Elements.empty()) {
      FirstName = Art.Interner->str(Rec.Elements[0].Name);
      break;
    }

  StringInterner TargetSI;
  TargetSI.intern("alreadyThere"); // Offsets every mapped symbol.
  paths::PathTable TargetTable;
  ASSERT_TRUE(rebaseArtifact(Art, TargetSI, TargetTable));

  ASSERT_EQ(TargetTable.size(), PathsBefore.size());
  for (paths::PathId Id = 1; Id <= TargetTable.size(); ++Id)
    EXPECT_EQ(TargetTable.render(Id, TargetSI), PathsBefore[Id - 1]);
  bool Found = false;
  for (const FileRecord &Rec : Art.Files)
    if (!Rec.Elements.empty()) {
      EXPECT_EQ(TargetSI.str(Rec.Elements[0].Name), FirstName);
      Found = true;
      break;
    }
  EXPECT_TRUE(Found);
}

TEST(ContextsIO, RejectsGarbage) {
  std::stringstream Buffer("not a contexts artifact");
  EXPECT_EQ(loadContexts(Buffer), nullptr);
}

TEST(ContextsIO, RejectsWrongMagic) {
  Corpus C = makeCorpus(3, 2);
  ContextsArtifact Art =
      buildContextsArtifact(C, Task::VariableNames, varsOptions());
  std::stringstream Buffer;
  saveContexts(Buffer, Art);
  std::string Bytes = Buffer.str();
  Bytes[0] ^= 0x5A;
  std::stringstream Corrupted(Bytes);
  EXPECT_EQ(loadContexts(Corrupted), nullptr);
}

TEST(ContextsIO, RejectsVersionMismatch) {
  Corpus C = makeCorpus(3, 2);
  ContextsArtifact Art =
      buildContextsArtifact(C, Task::VariableNames, varsOptions());
  std::stringstream Buffer;
  saveContexts(Buffer, Art);
  std::string Bytes = Buffer.str();
  Bytes[4] ^= 0x01; // Low byte of the little-endian version field.
  std::stringstream Corrupted(Bytes);
  EXPECT_EQ(loadContexts(Corrupted), nullptr);
}

TEST(ContextsIO, RejectsTruncationAtEveryQuarter) {
  Corpus C = makeCorpus(3, 2);
  ContextsArtifact Art =
      buildContextsArtifact(C, Task::VariableNames, varsOptions(/*Tri=*/true));
  std::stringstream Buffer;
  saveContexts(Buffer, Art);
  std::string Bytes = Buffer.str();
  for (size_t Num = 1; Num <= 3; ++Num) {
    std::stringstream Truncated(Bytes.substr(0, Bytes.size() * Num / 4));
    EXPECT_EQ(loadContexts(Truncated), nullptr) << "quarter " << Num;
  }
}

//===----------------------------------------------------------------------===//
// Evaluation stats
//===----------------------------------------------------------------------===//

TEST(EvalStats, AccuracyOfNothingIsNaNNotZero) {
  // Regression: a 0-of-0 evaluation used to present as accuracy 0.0 and
  // exit 0, feeding a fake score into gauges and the bench trajectory.
  EvalStats Empty;
  EXPECT_TRUE(std::isnan(Empty.accuracy()));

  EvalStats Half;
  Half.Total = 4;
  Half.Correct = 2;
  EXPECT_DOUBLE_EQ(Half.accuracy(), 0.5);
}

TEST(EvalStats, EvalArtifactOnEmptyArtifactReportsZeroTotal) {
  ModelBundle Bundle;
  Bundle.Interner = std::make_unique<StringInterner>();

  ContextsArtifact Empty;
  Empty.Interner = std::make_unique<StringInterner>();
  EvalStats Stats = evalArtifact(Bundle, Empty);
  EXPECT_EQ(Stats.Total, 0u);
  EXPECT_EQ(Stats.Correct, 0u);
  EXPECT_TRUE(std::isnan(Stats.accuracy()));
}

TEST(EvalStats, EvalArtifactMatchesManualTally) {
  Corpus C = makeCorpus(13, 4);
  ContextsArtifact Art =
      buildContextsArtifact(C, Task::VariableNames, varsOptions());

  // Train a model on the artifact's own graphs, then evaluate on the same
  // artifact: evalArtifact must agree with a hand-rolled tally.
  ModelBundle Bundle;
  Bundle.Lang = Art.Lang;
  Bundle.TaskKind = Art.TaskKind;
  Bundle.Extraction = Art.Extraction;
  // Same wiring as trainFromArtifact: the bundle takes the artifact's
  // interner, so record symbols resolve in the bundle's space.
  Bundle.Interner = std::move(Art.Interner);

  crf::ElementSelector Selector = selectorFor(Art.TaskKind);
  std::vector<crf::CrfGraph> Graphs;
  for (const FileRecord &Rec : Art.Files)
    Graphs.push_back(buildGraphFromRecord(Rec, Selector));
  Bundle.Model.train(Graphs);

  EvalStats Stats = evalArtifact(Bundle, Art);
  ASSERT_GT(Stats.Total, 0u);
  EXPECT_LE(Stats.Correct, Stats.Total);

  std::vector<std::vector<Symbol>> Preds = Bundle.Model.predictBatch(Graphs);
  size_t Total = 0, Correct = 0;
  const StringInterner &SI = *Bundle.Interner;
  for (size_t I = 0; I < Graphs.size(); ++I)
    for (uint32_t N : Graphs[I].Unknowns) {
      ++Total;
      if (Preds[I][N].isValid() &&
          SI.str(Preds[I][N]) == SI.str(Graphs[I].Nodes[N].Gold))
        ++Correct;
    }
  EXPECT_EQ(Stats.Total, Total);
  EXPECT_EQ(Stats.Correct, Correct);
}

} // namespace
