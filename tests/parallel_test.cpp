//===- parallel_test.cpp - Thread pool and determinism tests ----------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the chunked thread pool, plus the PR's central contract:
/// every sharded pipeline stage (parse, extraction, CRF experiments)
/// produces bit-identical results at any thread count.
///
//===----------------------------------------------------------------------===//

#include "support/Parallel.h"

#include "core/Experiments.h"
#include "datagen/Sketch.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <string>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <tuple>

using namespace pigeon;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

//===----------------------------------------------------------------------===//
// Pool unit tests
//===----------------------------------------------------------------------===//

TEST(ParallelPool, EmptyRangeRunsNothing) {
  std::atomic<int> Calls{0};
  parallel::parallelChunks(0, 4, [&](size_t, size_t, size_t) { ++Calls; });
  parallel::parallelFor(0, 4, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls.load(), 0);
}

TEST(ParallelPool, CoversEveryIndexExactlyOnce) {
  constexpr size_t N = 257; // Deliberately not a multiple of the threads.
  std::vector<std::atomic<int>> Hits(N);
  parallel::parallelFor(N, 4, [&](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ParallelPool, ChunksAreContiguousAndOrderedByIndex) {
  constexpr size_t N = 10;
  size_t Threads = 4;
  std::mutex M;
  std::vector<std::tuple<size_t, size_t, size_t>> Seen;
  parallel::parallelChunks(N, Threads,
                           [&](size_t Chunk, size_t Begin, size_t End) {
                             std::lock_guard<std::mutex> Lock(M);
                             Seen.emplace_back(Chunk, Begin, End);
                           });
  ASSERT_EQ(Seen.size(), parallel::chunkCountFor(N, Threads));
  std::sort(Seen.begin(), Seen.end());
  size_t Expected = 0;
  for (const auto &[Chunk, Begin, End] : Seen) {
    EXPECT_EQ(Begin, Expected);
    EXPECT_LT(Begin, End);
    Expected = End;
  }
  EXPECT_EQ(Expected, N);
}

TEST(ParallelPool, FewerItemsThanThreadsMakesOneChunkPerItem) {
  EXPECT_EQ(parallel::chunkCountFor(3, 8), 3u);
  EXPECT_EQ(parallel::chunkCountFor(8, 3), 3u);
  EXPECT_EQ(parallel::chunkCountFor(0, 3), 0u);
}

TEST(ParallelPool, MapPreservesElementOrder) {
  auto Out = parallel::parallelMap(50, 4, [](size_t I) { return I * I; });
  ASSERT_EQ(Out.size(), 50u);
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_EQ(Out[I], I * I);
}

TEST(ParallelPool, ExceptionsPropagateToCaller) {
  EXPECT_THROW(parallel::parallelFor(64, 4,
                                     [&](size_t I) {
                                       if (I == 17)
                                         throw std::runtime_error("boom");
                                     }),
               std::runtime_error);
  // The pool must still be usable after a failed region.
  std::atomic<size_t> Sum{0};
  parallel::parallelFor(10, 4, [&](size_t I) { Sum += I; });
  EXPECT_EQ(Sum.load(), 45u);
}

TEST(ParallelPool, NestedRegionsRunInline) {
  std::atomic<int> Inner{0};
  std::atomic<bool> SawRegionFlag{false};
  parallel::parallelFor(4, 4, [&](size_t) {
    if (parallel::inParallelRegion())
      SawRegionFlag = true;
    // A nested region must complete inline rather than deadlock on the
    // pool the enclosing region already occupies.
    parallel::parallelFor(8, 4, [&](size_t) { ++Inner; });
  });
  EXPECT_EQ(Inner.load(), 32);
  EXPECT_TRUE(SawRegionFlag.load());
  EXPECT_FALSE(parallel::inParallelRegion());
}

TEST(ParallelPool, SingleThreadRunsInline) {
  std::thread::id Caller = std::this_thread::get_id();
  parallel::parallelFor(16, 1, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
  });
}

TEST(ParallelPool, ResolveThreadsHonorsOverride) {
  parallel::setDefaultThreads(3);
  EXPECT_EQ(parallel::resolveThreads(0), 3u);
  EXPECT_EQ(parallel::resolveThreads(2), 2u); // Explicit request wins.
  parallel::setDefaultThreads(0);
  EXPECT_GE(parallel::resolveThreads(0), 1u);
}

//===----------------------------------------------------------------------===//
// Trace-context propagation into workers
//===----------------------------------------------------------------------===//

TEST(ParallelTrace, WorkerScopesNestUnderSpawningStage) {
  telemetry::MetricsRegistry Reg;
  {
    telemetry::TraceScope Stage(Reg, "stage");
    parallel::parallelFor(32, 4, [&](size_t) {
      // Runs on pool workers and the participating caller alike; all of
      // them must see the spawner's "stage" as their current phase.
      telemetry::TraceScope Item(Reg, "item");
    });
  }
  const telemetry::TraceNode &Root = Reg.traceRoot();
  ASSERT_EQ(Root.Children.size(), 1u);
  EXPECT_EQ(Root.Children[0]->Name, "stage");
  ASSERT_EQ(Root.Children[0]->Children.size(), 1u); // merged by name
  const telemetry::TraceNode &Item = *Root.Children[0]->Children[0];
  EXPECT_EQ(Item.Name, "item");
  EXPECT_EQ(Item.Calls, 32u);
}

TEST(ParallelTrace, CallerContextRestoredAfterParticipation) {
  telemetry::MetricsRegistry Reg;
  {
    telemetry::TraceScope Stage(Reg, "stage");
    parallel::parallelFor(16, 4, [](size_t) {});
    // The caller participated in the region; its own phase must be
    // restored so later scopes still nest under "stage".
    telemetry::TraceScope After(Reg, "after");
  }
  const telemetry::TraceNode &Root = Reg.traceRoot();
  ASSERT_EQ(Root.Children.size(), 1u);
  ASSERT_EQ(Root.Children[0]->Children.size(), 1u);
  EXPECT_EQ(Root.Children[0]->Children[0]->Name, "after");
}

namespace {

/// "name(calls)[child child ...]" — the thread-count-invariant part of a
/// trace tree (Seconds differ run to run and are excluded).
std::string traceShape(const telemetry::TraceNode &Node) {
  std::string Out =
      Node.Name + "(" + std::to_string(Node.Calls) + ")[";
  for (size_t I = 0; I < Node.Children.size(); ++I) {
    if (I)
      Out += " ";
    Out += traceShape(*Node.Children[I]);
  }
  return Out + "]";
}

} // namespace

TEST(ParallelTrace, TraceTreeShapeIsThreadCountInvariant) {
  auto ShapeAt = [](size_t Threads) {
    telemetry::MetricsRegistry Reg;
    {
      telemetry::TraceScope Stage(Reg, "stage");
      parallel::parallelChunks(
          8, Threads, [&](size_t, size_t Begin, size_t End) {
            for (size_t I = Begin; I < End; ++I) {
              telemetry::TraceScope Work(Reg, "work");
              telemetry::TraceScope Inner(Reg, "inner");
            }
          });
    }
    return traceShape(Reg.traceRoot());
  };
  // Chunk spans exist only in the event stream, never as trace-tree
  // nodes — chunk count varies with the thread count, and the tree must
  // not (the PR-2 determinism contract extends to telemetry).
  std::string Serial = ShapeAt(1);
  EXPECT_EQ(Serial, "total(0)[stage(1)[work(8)[inner(8)[]]]]");
  EXPECT_EQ(Serial, ShapeAt(2));
  EXPECT_EQ(Serial, ShapeAt(4));
}

//===----------------------------------------------------------------------===//
// Determinism across thread counts
//===----------------------------------------------------------------------===//

std::vector<datagen::SourceFile> testSources(Language Lang) {
  datagen::CorpusSpec Spec = datagen::defaultSpec(Lang, /*Seed=*/7);
  Spec.NumProjects = 12;
  return datagen::generateCorpus(Spec);
}

void expectSameInterner(const StringInterner &A, const StringInterner &B) {
  ASSERT_EQ(A.size(), B.size());
  for (uint32_t I = 1; I < A.size(); ++I)
    ASSERT_EQ(A.str(Symbol::fromIndex(I)), B.str(Symbol::fromIndex(I)))
        << "symbol " << I;
}

void expectSameCorpus(const Corpus &A, const Corpus &B) {
  ASSERT_EQ(A.Files.size(), B.Files.size());
  EXPECT_EQ(A.SourceBytes, B.SourceBytes);
  EXPECT_EQ(A.ParseFailures, B.ParseFailures);
  expectSameInterner(*A.Interner, *B.Interner);
  for (size_t F = 0; F < A.Files.size(); ++F) {
    const ast::Tree &TA = A.Files[F].Tree;
    const ast::Tree &TB = B.Files[F].Tree;
    ASSERT_EQ(A.Files[F].FileName, B.Files[F].FileName);
    ASSERT_EQ(TA.size(), TB.size()) << A.Files[F].FileName;
    for (ast::NodeId N = 0; N < TA.size(); ++N) {
      // Symbol *ids*, not just strings: the merge must reproduce the
      // serial interner layout exactly.
      ASSERT_EQ(TA.node(N).Kind.index(), TB.node(N).Kind.index())
          << A.Files[F].FileName << " node " << N;
      ASSERT_EQ(TA.node(N).Value.index(), TB.node(N).Value.index())
          << A.Files[F].FileName << " node " << N;
    }
    ASSERT_EQ(TA.elements().size(), TB.elements().size());
    for (size_t E = 0; E < TA.elements().size(); ++E)
      ASSERT_EQ(TA.elements()[E].Name.index(), TB.elements()[E].Name.index());
    for (ast::NodeId N : TA.typedNodes())
      ASSERT_EQ(TA.typeOf(N).index(), TB.typeOf(N).index());
  }
}

TEST(ParallelDeterminism, ParseCorpusIsThreadCountInvariant) {
  for (Language Lang : {Language::JavaScript, Language::Java}) {
    auto Sources = testSources(Lang);
    Corpus Serial = parseCorpus(Sources, Lang, /*Threads=*/1);
    for (size_t Threads : {2u, 4u, 7u}) {
      Corpus Sharded = parseCorpus(Sources, Lang, Threads);
      SCOPED_TRACE("threads=" + std::to_string(Threads));
      expectSameCorpus(Serial, Sharded);
    }
  }
}

TEST(ParallelDeterminism, ExtractionIsThreadCountInvariant) {
  auto Sources = testSources(Language::JavaScript);
  Corpus C = parseCorpus(Sources, Language::JavaScript, 1);
  std::vector<size_t> Indices(C.Files.size());
  std::iota(Indices.begin(), Indices.end(), size_t(0));

  CrfExperimentOptions Options;
  Options.Extraction.MaxLength = 4;
  Options.Extraction.MaxWidth = 3;
  Options.TriContexts = true;

  Options.Threads = 1;
  paths::PathTable SerialTable;
  auto Serial = extractCorpusContexts(C, Indices, Options, SerialTable);

  for (size_t Threads : {2u, 4u}) {
    Options.Threads = Threads;
    paths::PathTable Table;
    auto Sharded = extractCorpusContexts(C, Indices, Options, Table);
    SCOPED_TRACE("threads=" + std::to_string(Threads));
    ASSERT_EQ(SerialTable.size(), Table.size());
    for (paths::PathId Id = 1; Id <= Table.size(); ++Id) {
      // Byte-identical packed paths at every id: the merged table must
      // replay the serial first-encounter order exactly.
      auto SerialBytes = SerialTable.bytes(Id);
      auto ShardedBytes = Table.bytes(Id);
      ASSERT_TRUE(std::equal(SerialBytes.begin(), SerialBytes.end(),
                             ShardedBytes.begin(), ShardedBytes.end()))
          << "path " << Id << ": " << SerialTable.render(Id, *C.Interner)
          << " vs " << Table.render(Id, *C.Interner);
    }
    ASSERT_EQ(Serial.size(), Sharded.size());
    for (size_t F = 0; F < Serial.size(); ++F) {
      ASSERT_EQ(Serial[F].Contexts.size(), Sharded[F].Contexts.size());
      for (size_t I = 0; I < Serial[F].Contexts.size(); ++I) {
        EXPECT_EQ(Serial[F].Contexts[I].Start, Sharded[F].Contexts[I].Start);
        EXPECT_EQ(Serial[F].Contexts[I].End, Sharded[F].Contexts[I].End);
        ASSERT_EQ(Serial[F].Contexts[I].Path, Sharded[F].Contexts[I].Path)
            << "file " << F << " context " << I;
        EXPECT_EQ(Serial[F].Contexts[I].Semi, Sharded[F].Contexts[I].Semi);
      }
      ASSERT_EQ(Serial[F].Tris.size(), Sharded[F].Tris.size());
      for (size_t I = 0; I < Serial[F].Tris.size(); ++I)
        ASSERT_EQ(Serial[F].Tris[I].Path, Sharded[F].Tris[I].Path);
    }
  }
}

TEST(ParallelDeterminism, CrfNameExperimentIsThreadCountInvariant) {
  auto Sources = testSources(Language::JavaScript);
  CrfExperimentOptions Options;
  Options.Extraction.MaxLength = 4;
  Options.Extraction.MaxWidth = 3;
  Options.Crf.Epochs = 2;
  Options.TriContexts = true;
  Options.DownsampleP = 0.8; // Exercise the shared-Rng downsampler too.

  Options.Threads = 1;
  Corpus Serial = parseCorpus(Sources, Language::JavaScript, 1);
  ExperimentResult Base =
      runCrfNameExperiment(Serial, Task::VariableNames, Options);

  size_t Hardware = parallel::hardwareConcurrency();
  for (size_t Threads : {size_t(2), Hardware}) {
    Options.Threads = Threads;
    Corpus Sharded = parseCorpus(Sources, Language::JavaScript, Threads);
    ExperimentResult R =
        runCrfNameExperiment(Sharded, Task::VariableNames, Options);
    SCOPED_TRACE("threads=" + std::to_string(Threads));
    EXPECT_EQ(Base.Accuracy, R.Accuracy);
    EXPECT_EQ(Base.SubtokenF1, R.SubtokenF1);
    EXPECT_EQ(Base.Predictions, R.Predictions);
    EXPECT_EQ(Base.NumFeatures, R.NumFeatures);
    EXPECT_EQ(Base.TrainContexts, R.TrainContexts);
    EXPECT_EQ(Base.DistinctPaths, R.DistinctPaths);
  }
}

TEST(ParallelDeterminism, CrfTypeExperimentIsThreadCountInvariant) {
  auto Sources = testSources(Language::Java);
  CrfExperimentOptions Options;
  Options.Extraction = tunedExtraction(Language::Java, Task::FullTypes);
  Options.Crf.Epochs = 2;

  Options.Threads = 1;
  Corpus Serial = parseCorpus(Sources, Language::Java, 1);
  ExperimentResult Base = runCrfTypeExperiment(Serial, Options);

  Options.Threads = 3;
  Corpus Sharded = parseCorpus(Sources, Language::Java, 3);
  ExperimentResult R = runCrfTypeExperiment(Sharded, Options);
  EXPECT_EQ(Base.Accuracy, R.Accuracy);
  EXPECT_EQ(Base.Predictions, R.Predictions);
  EXPECT_EQ(Base.NumFeatures, R.NumFeatures);
  EXPECT_EQ(Base.TrainContexts, R.TrainContexts);
  EXPECT_EQ(Base.DistinctPaths, R.DistinctPaths);
}

} // namespace
