//===- parallel_test.cpp - Thread pool and determinism tests ----------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the chunked thread pool, plus the PR's central contract:
/// every sharded pipeline stage (parse, extraction, CRF experiments)
/// produces bit-identical results at any thread count.
///
//===----------------------------------------------------------------------===//

#include "support/Parallel.h"

#include "core/ContextsIO.h"
#include "core/Experiments.h"
#include "core/ModelIO.h"
#include "datagen/Sketch.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <string>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <tuple>

using namespace pigeon;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

//===----------------------------------------------------------------------===//
// Pool unit tests
//===----------------------------------------------------------------------===//

TEST(ParallelPool, EmptyRangeRunsNothing) {
  std::atomic<int> Calls{0};
  parallel::parallelChunks(0, 4, [&](size_t, size_t, size_t) { ++Calls; });
  parallel::parallelFor(0, 4, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls.load(), 0);
}

TEST(ParallelPool, CoversEveryIndexExactlyOnce) {
  constexpr size_t N = 257; // Deliberately not a multiple of the threads.
  std::vector<std::atomic<int>> Hits(N);
  parallel::parallelFor(N, 4, [&](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ParallelPool, ChunksAreContiguousAndOrderedByIndex) {
  constexpr size_t N = 10;
  size_t Threads = 4;
  std::mutex M;
  std::vector<std::tuple<size_t, size_t, size_t>> Seen;
  parallel::parallelChunks(N, Threads,
                           [&](size_t Chunk, size_t Begin, size_t End) {
                             std::lock_guard<std::mutex> Lock(M);
                             Seen.emplace_back(Chunk, Begin, End);
                           });
  ASSERT_EQ(Seen.size(), parallel::chunkCountFor(N, Threads));
  std::sort(Seen.begin(), Seen.end());
  size_t Expected = 0;
  for (const auto &[Chunk, Begin, End] : Seen) {
    EXPECT_EQ(Begin, Expected);
    EXPECT_LT(Begin, End);
    Expected = End;
  }
  EXPECT_EQ(Expected, N);
}

TEST(ParallelPool, ChunkCountOversubscribesForStealing) {
  // Multi-threaded runs oversubscribe (Threads * ChunkOversubscription
  // chunks) so fast workers steal the tail instead of idling, clamped to
  // one chunk per item when the range is small.
  EXPECT_EQ(parallel::chunkCountFor(3, 8), 3u);
  EXPECT_EQ(parallel::chunkCountFor(8, 3),
            std::min<size_t>(8, 3 * parallel::ChunkOversubscription));
  EXPECT_EQ(parallel::chunkCountFor(1000, 4),
            4 * parallel::ChunkOversubscription);
  EXPECT_EQ(parallel::chunkCountFor(0, 3), 0u);
  // Serial runs get exactly one chunk: no slicing overhead, and the
  // chunk boundaries trivially match the whole range.
  EXPECT_EQ(parallel::chunkCountFor(100, 1), 1u);
}

TEST(ParallelPool, PlanChunksCoversRangeContiguously) {
  for (size_t N : {0u, 1u, 7u, 257u}) {
    for (size_t Threads : {1u, 3u, 4u}) {
      parallel::ChunkPlan Plan = parallel::planChunks(N, Threads);
      SCOPED_TRACE("N=" + std::to_string(N) +
                   " threads=" + std::to_string(Threads));
      ASSERT_EQ(Plan.count(), parallel::chunkCountFor(N, Threads));
      ASSERT_EQ(Plan.items(), N);
      size_t Prev = 0;
      for (size_t C = 0; C < Plan.count(); ++C) {
        EXPECT_EQ(Plan.begin(C), Prev);
        EXPECT_LE(Plan.begin(C), Plan.end(C));
        Prev = Plan.end(C);
      }
      EXPECT_EQ(Prev, N);
    }
  }
}

TEST(ParallelPool, PlanChunksIsolatesGiantItems) {
  // One item dominating the cost vector must not drag its whole
  // even-split neighborhood into a straggler chunk: the plan cuts around
  // it so everything else remains available for stealing.
  std::vector<uint64_t> Costs(64, 1);
  Costs[10] = 10000;
  parallel::ChunkPlan Plan =
      parallel::planChunks(Costs.size(), /*Threads=*/4, Costs);
  size_t GiantChunk = Plan.count();
  for (size_t C = 0; C < Plan.count(); ++C)
    if (Plan.begin(C) <= 10 && 10 < Plan.end(C))
      GiantChunk = C;
  ASSERT_LT(GiantChunk, Plan.count());
  // The giant sits alone; the remaining 63 unit-cost items spread over
  // the other chunks instead of being fused onto the giant's chunk.
  EXPECT_EQ(Plan.end(GiantChunk) - Plan.begin(GiantChunk), 1u);
  size_t NonEmpty = 0;
  for (size_t C = 0; C < Plan.count(); ++C)
    NonEmpty += Plan.begin(C) < Plan.end(C);
  EXPECT_GT(NonEmpty, Plan.count() / 2);
}

TEST(ParallelPool, PlanChunksWithoutCostsFallsBackToEvenSplit) {
  parallel::ChunkPlan Plan = parallel::planChunks(100, /*Threads=*/2);
  ASSERT_EQ(Plan.count(), parallel::chunkCountFor(100, 2));
  size_t Largest = 0, Smallest = 100;
  for (size_t C = 0; C < Plan.count(); ++C) {
    Largest = std::max(Largest, Plan.end(C) - Plan.begin(C));
    Smallest = std::min(Smallest, Plan.end(C) - Plan.begin(C));
  }
  EXPECT_LE(Largest - Smallest, 1u); // Even to within rounding.
}

TEST(ParallelPool, PlanBasedChunksSkipEmptyAndCoverAll) {
  // A cheap prefix fused into one chunk plus a giant leaves later chunks
  // empty; the runner must skip them and still visit every index once.
  std::vector<uint64_t> Costs = {1, 1, 1, 1, 100};
  parallel::ChunkPlan Plan = parallel::planChunks(Costs.size(), 2, Costs);
  ASSERT_EQ(Plan.count(), 5u);
  EXPECT_EQ(Plan.begin(4), Plan.end(4)); // Trailing chunk came out empty.
  std::vector<std::atomic<int>> Hits(Costs.size());
  parallel::parallelChunks(Plan, 4, [&](size_t, size_t Begin, size_t End) {
    ASSERT_LT(Begin, End); // Empty chunks never reach the body.
    for (size_t I = Begin; I < End; ++I)
      ++Hits[I];
  });
  for (size_t I = 0; I < Hits.size(); ++I)
    ASSERT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ParallelPool, AvailableConcurrencyIsPositive) {
  EXPECT_GE(parallel::availableConcurrency(), 1u);
}

TEST(ParallelPool, MapPreservesElementOrder) {
  auto Out = parallel::parallelMap(50, 4, [](size_t I) { return I * I; });
  ASSERT_EQ(Out.size(), 50u);
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_EQ(Out[I], I * I);
}

TEST(ParallelPool, ExceptionsPropagateToCaller) {
  EXPECT_THROW(parallel::parallelFor(64, 4,
                                     [&](size_t I) {
                                       if (I == 17)
                                         throw std::runtime_error("boom");
                                     }),
               std::runtime_error);
  // The pool must still be usable after a failed region.
  std::atomic<size_t> Sum{0};
  parallel::parallelFor(10, 4, [&](size_t I) { Sum += I; });
  EXPECT_EQ(Sum.load(), 45u);
}

TEST(ParallelPool, NestedRegionsRunInline) {
  std::atomic<int> Inner{0};
  std::atomic<bool> SawRegionFlag{false};
  parallel::parallelFor(4, 4, [&](size_t) {
    if (parallel::inParallelRegion())
      SawRegionFlag = true;
    // A nested region must complete inline rather than deadlock on the
    // pool the enclosing region already occupies.
    parallel::parallelFor(8, 4, [&](size_t) { ++Inner; });
  });
  EXPECT_EQ(Inner.load(), 32);
  EXPECT_TRUE(SawRegionFlag.load());
  EXPECT_FALSE(parallel::inParallelRegion());
}

TEST(ParallelPool, SingleThreadRunsInline) {
  std::thread::id Caller = std::this_thread::get_id();
  parallel::parallelFor(16, 1, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
  });
}

TEST(ParallelPool, ResolveThreadsHonorsOverride) {
  parallel::setDefaultThreads(3);
  EXPECT_EQ(parallel::resolveThreads(0), 3u);
  EXPECT_EQ(parallel::resolveThreads(2), 2u); // Explicit request wins.
  parallel::setDefaultThreads(0);
  EXPECT_GE(parallel::resolveThreads(0), 1u);
}

//===----------------------------------------------------------------------===//
// Trace-context propagation into workers
//===----------------------------------------------------------------------===//

TEST(ParallelTrace, WorkerScopesNestUnderSpawningStage) {
  telemetry::MetricsRegistry Reg;
  {
    telemetry::TraceScope Stage(Reg, "stage");
    parallel::parallelFor(32, 4, [&](size_t) {
      // Runs on pool workers and the participating caller alike; all of
      // them must see the spawner's "stage" as their current phase.
      telemetry::TraceScope Item(Reg, "item");
    });
  }
  const telemetry::TraceNode &Root = Reg.traceRoot();
  ASSERT_EQ(Root.Children.size(), 1u);
  EXPECT_EQ(Root.Children[0]->Name, "stage");
  ASSERT_EQ(Root.Children[0]->Children.size(), 1u); // merged by name
  const telemetry::TraceNode &Item = *Root.Children[0]->Children[0];
  EXPECT_EQ(Item.Name, "item");
  EXPECT_EQ(Item.Calls, 32u);
}

TEST(ParallelTrace, CallerContextRestoredAfterParticipation) {
  telemetry::MetricsRegistry Reg;
  {
    telemetry::TraceScope Stage(Reg, "stage");
    parallel::parallelFor(16, 4, [](size_t) {});
    // The caller participated in the region; its own phase must be
    // restored so later scopes still nest under "stage".
    telemetry::TraceScope After(Reg, "after");
  }
  const telemetry::TraceNode &Root = Reg.traceRoot();
  ASSERT_EQ(Root.Children.size(), 1u);
  ASSERT_EQ(Root.Children[0]->Children.size(), 1u);
  EXPECT_EQ(Root.Children[0]->Children[0]->Name, "after");
}

namespace {

/// "name(calls)[child child ...]" — the thread-count-invariant part of a
/// trace tree (Seconds differ run to run and are excluded).
std::string traceShape(const telemetry::TraceNode &Node) {
  std::string Out =
      Node.Name + "(" + std::to_string(Node.Calls) + ")[";
  for (size_t I = 0; I < Node.Children.size(); ++I) {
    if (I)
      Out += " ";
    Out += traceShape(*Node.Children[I]);
  }
  return Out + "]";
}

} // namespace

TEST(ParallelTrace, TraceTreeShapeIsThreadCountInvariant) {
  auto ShapeAt = [](size_t Threads) {
    telemetry::MetricsRegistry Reg;
    {
      telemetry::TraceScope Stage(Reg, "stage");
      parallel::parallelChunks(
          8, Threads, [&](size_t, size_t Begin, size_t End) {
            for (size_t I = Begin; I < End; ++I) {
              telemetry::TraceScope Work(Reg, "work");
              telemetry::TraceScope Inner(Reg, "inner");
            }
          });
    }
    return traceShape(Reg.traceRoot());
  };
  // Chunk spans exist only in the event stream, never as trace-tree
  // nodes — chunk count varies with the thread count, and the tree must
  // not (the PR-2 determinism contract extends to telemetry).
  std::string Serial = ShapeAt(1);
  EXPECT_EQ(Serial, "total(0)[stage(1)[work(8)[inner(8)[]]]]");
  EXPECT_EQ(Serial, ShapeAt(2));
  EXPECT_EQ(Serial, ShapeAt(4));
}

//===----------------------------------------------------------------------===//
// Determinism across thread counts
//===----------------------------------------------------------------------===//

std::vector<datagen::SourceFile> testSources(Language Lang) {
  datagen::CorpusSpec Spec = datagen::defaultSpec(Lang, /*Seed=*/7);
  Spec.NumProjects = 12;
  return datagen::generateCorpus(Spec);
}

void expectSameInterner(const StringInterner &A, const StringInterner &B) {
  ASSERT_EQ(A.size(), B.size());
  for (uint32_t I = 1; I < A.size(); ++I)
    ASSERT_EQ(A.str(Symbol::fromIndex(I)), B.str(Symbol::fromIndex(I)))
        << "symbol " << I;
}

void expectSameCorpus(const Corpus &A, const Corpus &B) {
  ASSERT_EQ(A.Files.size(), B.Files.size());
  EXPECT_EQ(A.SourceBytes, B.SourceBytes);
  EXPECT_EQ(A.ParseFailures, B.ParseFailures);
  expectSameInterner(*A.Interner, *B.Interner);
  for (size_t F = 0; F < A.Files.size(); ++F) {
    const ast::Tree &TA = A.Files[F].Tree;
    const ast::Tree &TB = B.Files[F].Tree;
    ASSERT_EQ(A.Files[F].FileName, B.Files[F].FileName);
    ASSERT_EQ(TA.size(), TB.size()) << A.Files[F].FileName;
    for (ast::NodeId N = 0; N < TA.size(); ++N) {
      // Symbol *ids*, not just strings: the merge must reproduce the
      // serial interner layout exactly.
      ASSERT_EQ(TA.node(N).Kind.index(), TB.node(N).Kind.index())
          << A.Files[F].FileName << " node " << N;
      ASSERT_EQ(TA.node(N).Value.index(), TB.node(N).Value.index())
          << A.Files[F].FileName << " node " << N;
    }
    ASSERT_EQ(TA.elements().size(), TB.elements().size());
    for (size_t E = 0; E < TA.elements().size(); ++E)
      ASSERT_EQ(TA.elements()[E].Name.index(), TB.elements()[E].Name.index());
    for (ast::NodeId N : TA.typedNodes())
      ASSERT_EQ(TA.typeOf(N).index(), TB.typeOf(N).index());
  }
}

TEST(ParallelDeterminism, ParseCorpusIsThreadCountInvariant) {
  for (Language Lang : {Language::JavaScript, Language::Java}) {
    auto Sources = testSources(Lang);
    Corpus Serial = parseCorpus(Sources, Lang, /*Threads=*/1);
    for (size_t Threads : {2u, 4u, 7u}) {
      Corpus Sharded = parseCorpus(Sources, Lang, Threads);
      SCOPED_TRACE("threads=" + std::to_string(Threads));
      expectSameCorpus(Serial, Sharded);
    }
  }
}

TEST(ParallelDeterminism, ExtractionIsThreadCountInvariant) {
  auto Sources = testSources(Language::JavaScript);
  Corpus C = parseCorpus(Sources, Language::JavaScript, 1);
  std::vector<size_t> Indices(C.Files.size());
  std::iota(Indices.begin(), Indices.end(), size_t(0));

  CrfExperimentOptions Options;
  Options.Extraction.MaxLength = 4;
  Options.Extraction.MaxWidth = 3;
  Options.TriContexts = true;

  Options.Threads = 1;
  paths::PathTable SerialTable;
  auto Serial = extractCorpusContexts(C, Indices, Options, SerialTable);

  for (size_t Threads : {2u, 4u}) {
    Options.Threads = Threads;
    paths::PathTable Table;
    auto Sharded = extractCorpusContexts(C, Indices, Options, Table);
    SCOPED_TRACE("threads=" + std::to_string(Threads));
    ASSERT_EQ(SerialTable.size(), Table.size());
    for (paths::PathId Id = 1; Id <= Table.size(); ++Id) {
      // Byte-identical packed paths at every id: the merged table must
      // replay the serial first-encounter order exactly.
      auto SerialBytes = SerialTable.bytes(Id);
      auto ShardedBytes = Table.bytes(Id);
      ASSERT_TRUE(std::equal(SerialBytes.begin(), SerialBytes.end(),
                             ShardedBytes.begin(), ShardedBytes.end()))
          << "path " << Id << ": " << SerialTable.render(Id, *C.Interner)
          << " vs " << Table.render(Id, *C.Interner);
    }
    ASSERT_EQ(Serial.size(), Sharded.size());
    for (size_t F = 0; F < Serial.size(); ++F) {
      ASSERT_EQ(Serial[F].Contexts.size(), Sharded[F].Contexts.size());
      for (size_t I = 0; I < Serial[F].Contexts.size(); ++I) {
        EXPECT_EQ(Serial[F].Contexts[I].Start, Sharded[F].Contexts[I].Start);
        EXPECT_EQ(Serial[F].Contexts[I].End, Sharded[F].Contexts[I].End);
        ASSERT_EQ(Serial[F].Contexts[I].Path, Sharded[F].Contexts[I].Path)
            << "file " << F << " context " << I;
        EXPECT_EQ(Serial[F].Contexts[I].Semi, Sharded[F].Contexts[I].Semi);
      }
      ASSERT_EQ(Serial[F].Tris.size(), Sharded[F].Tris.size());
      for (size_t I = 0; I < Serial[F].Tris.size(); ++I)
        ASSERT_EQ(Serial[F].Tris[I].Path, Sharded[F].Tris[I].Path);
    }
  }
}

TEST(ParallelDeterminism, CrfNameExperimentIsThreadCountInvariant) {
  auto Sources = testSources(Language::JavaScript);
  CrfExperimentOptions Options;
  Options.Extraction.MaxLength = 4;
  Options.Extraction.MaxWidth = 3;
  Options.Crf.Epochs = 2;
  Options.TriContexts = true;
  Options.DownsampleP = 0.8; // Exercise the shared-Rng downsampler too.

  Options.Threads = 1;
  Corpus Serial = parseCorpus(Sources, Language::JavaScript, 1);
  ExperimentResult Base =
      runCrfNameExperiment(Serial, Task::VariableNames, Options);

  size_t Hardware = parallel::hardwareConcurrency();
  for (size_t Threads : {size_t(2), Hardware}) {
    Options.Threads = Threads;
    Corpus Sharded = parseCorpus(Sources, Language::JavaScript, Threads);
    ExperimentResult R =
        runCrfNameExperiment(Sharded, Task::VariableNames, Options);
    SCOPED_TRACE("threads=" + std::to_string(Threads));
    EXPECT_EQ(Base.Accuracy, R.Accuracy);
    EXPECT_EQ(Base.SubtokenF1, R.SubtokenF1);
    EXPECT_EQ(Base.Predictions, R.Predictions);
    EXPECT_EQ(Base.NumFeatures, R.NumFeatures);
    EXPECT_EQ(Base.TrainContexts, R.TrainContexts);
    EXPECT_EQ(Base.DistinctPaths, R.DistinctPaths);
  }
}

TEST(ParallelDeterminism, SkewedCorpusIsThreadCountInvariant) {
  // One file ~50x the cost of its neighbors: the cost-balanced plan must
  // isolate it without perturbing the merged result, and the skew must
  // not degrade the run into a serial straggler chunk that changes the
  // commit order.
  auto Sources = testSources(Language::JavaScript);
  std::string Giant = Sources[3].Text;
  for (int I = 0; I < 50; ++I)
    Sources[3].Text += Giant; // Concatenated programs stay parseable.
  Corpus Serial = parseCorpus(Sources, Language::JavaScript, 1);
  for (size_t Threads : {2u, 4u}) {
    Corpus Sharded = parseCorpus(Sources, Language::JavaScript, Threads);
    SCOPED_TRACE("threads=" + std::to_string(Threads));
    expectSameCorpus(Serial, Sharded);
  }
}

//===----------------------------------------------------------------------===//
// Shared interner: concurrency safety and delta commits
//===----------------------------------------------------------------------===//

TEST(SharedInterner, ConcurrentInternAndReadIsSafe) {
  // Writers intern overlapping string sets straight into one shared
  // interner while readers chase size() and resolve every published
  // symbol. Safety (no torn reads, no lost strings) is the contract
  // here — under TSan this is the proof the read path is lock-free
  // *and* race-free; id assignment order is allowed to vary.
  StringInterner SI;
  constexpr size_t Distinct = 1500;
  constexpr size_t Ops = 6000;
  auto Name = [](size_t I) { return "sym_" + std::to_string(I % Distinct); };

  constexpr size_t Writers = 4;
  std::vector<std::vector<Symbol>> Ids(Writers,
                                       std::vector<Symbol>(Distinct));
  std::atomic<bool> StopReaders{false};
  std::atomic<size_t> ReaderChecks{0};
  std::vector<std::thread> Threads;
  for (size_t W = 0; W < Writers; ++W)
    Threads.emplace_back([&, W] {
      for (size_t I = 0; I < Ops; ++I) {
        // Offset start per writer so threads collide on *different*
        // strings at any given moment.
        size_t K = (I + W * (Ops / Writers)) % Distinct;
        Ids[W][K] = SI.intern(Name(K));
      }
    });
  for (size_t R = 0; R < 2; ++R)
    Threads.emplace_back([&] {
      auto Scan = [&] {
        size_t N = SI.size();
        for (uint32_t I = 1; I < N; ++I)
          if (!SI.str(Symbol::fromIndex(I)).empty())
            ReaderChecks.fetch_add(1, std::memory_order_relaxed);
      };
      while (!StopReaders.load(std::memory_order_acquire))
        Scan();
      // One full pass after the writers quiesce, so the reader exercises
      // (and counts) the whole table even if it was never scheduled
      // while the writers ran — on a one-core box they may finish first.
      Scan();
    });
  for (size_t W = 0; W < Writers; ++W)
    Threads[W].join();
  StopReaders.store(true, std::memory_order_release);
  for (size_t T = Writers; T < Threads.size(); ++T)
    Threads[T].join();

  // Exactly the distinct strings (plus the reserved empty string at 0).
  ASSERT_EQ(SI.size(), Distinct + 1);
  for (size_t K = 0; K < Distinct; ++K) {
    Symbol S = Ids[0][K];
    ASSERT_TRUE(S.isValid());
    EXPECT_EQ(SI.str(S), Name(K));
    EXPECT_EQ(SI.lookup(Name(K)), S);
    // Every writer resolved the same string to the same id.
    for (size_t W = 1; W < Writers; ++W)
      ASSERT_EQ(Ids[W][K], S) << "writer " << W << " string " << K;
  }
  EXPECT_GT(ReaderChecks.load(), 0u);
}

TEST(SharedInterner, DeltaCommitReplaysSerialFirstEncounterOrder) {
  // Four "chunks" of strings with cross-chunk duplicates. The sharded
  // protocol — chunk 0 warm into the base, chunks 1..3 into overlays
  // (concurrently), ordered commits, provisional remap — must reproduce
  // the serial interner ids exactly.
  std::vector<std::vector<std::string>> Chunks(4);
  for (size_t C = 0; C < 4; ++C)
    for (size_t I = 0; I < 64; ++I) {
      Chunks[C].push_back("shared_" + std::to_string(I % 7));
      Chunks[C].push_back("c" + std::to_string(C) + "_" +
                          std::to_string(I));
      if (C > 0) // Hits against a *previous* chunk's private strings.
        Chunks[C].push_back("c" + std::to_string(C - 1) + "_" +
                            std::to_string(I / 2));
    }

  StringInterner Serial;
  for (const auto &Chunk : Chunks)
    for (const std::string &S : Chunk)
      Serial.intern(S);

  StringInterner Base;
  for (const std::string &S : Chunks[0])
    Base.intern(S);
  std::vector<std::unique_ptr<StringInterner>> Overlays(4);
  std::vector<std::vector<Symbol>> Raw(4);
  {
    std::vector<std::thread> Threads;
    for (size_t C = 1; C < 4; ++C)
      Threads.emplace_back([&, C] {
        Overlays[C] =
            std::make_unique<StringInterner>(StringInterner::Delta, Base);
        for (const std::string &S : Chunks[C])
          Raw[C].push_back(Overlays[C]->intern(S));
      });
    for (std::thread &T : Threads)
      T.join();
  }
  for (size_t C = 1; C < 4; ++C) {
    std::vector<uint32_t> Map = Base.commitDelta(*Overlays[C]);
    for (Symbol &S : Raw[C])
      if (S.index() & StringInterner::ProvisionalBit)
        S = Symbol::fromIndex(
            Map[S.index() & ~StringInterner::ProvisionalBit]);
  }

  expectSameInterner(Serial, Base);
  for (size_t C = 1; C < 4; ++C)
    for (size_t I = 0; I < Chunks[C].size(); ++I)
      ASSERT_EQ(Raw[C][I], Serial.lookup(Chunks[C][I]))
          << "chunk " << C << " string " << Chunks[C][I];
}

//===----------------------------------------------------------------------===//
// Byte identity on disk: artifacts and models
//===----------------------------------------------------------------------===//

std::string contextsBytesAt(size_t Threads) {
  auto Sources = testSources(Language::JavaScript);
  Corpus C = parseCorpus(Sources, Language::JavaScript, Threads);
  CrfExperimentOptions Options;
  Options.Extraction.MaxLength = 4;
  Options.Extraction.MaxWidth = 3;
  Options.TriContexts = true;
  Options.Threads = Threads;
  ContextsArtifact Art =
      buildContextsArtifact(C, Task::VariableNames, Options);
  std::ostringstream OS;
  saveContexts(OS, Art);
  return std::move(OS).str();
}

TEST(ParallelDeterminism, ContextsArtifactBytesAreThreadCountInvariant) {
  // The strongest form of the contract: the *serialized* artifact —
  // interner layout, packed path table, every context record — is
  // byte-for-byte identical at any thread count.
  std::string Serial = contextsBytesAt(1);
  ASSERT_FALSE(Serial.empty());
  size_t Hardware = parallel::hardwareConcurrency();
  for (size_t Threads : {size_t(2), size_t(4), Hardware}) {
    SCOPED_TRACE("threads=" + std::to_string(Threads));
    EXPECT_TRUE(Serial == contextsBytesAt(Threads));
  }
}

std::string modelBytesAt(size_t Threads) {
  auto Sources = testSources(Language::JavaScript);
  Corpus C = parseCorpus(Sources, Language::JavaScript, Threads);
  CrfExperimentOptions Options;
  Options.Extraction.MaxLength = 4;
  Options.Extraction.MaxWidth = 3;
  Options.TriContexts = true;
  Options.Threads = Threads;
  ContextsArtifact Art =
      buildContextsArtifact(C, Task::VariableNames, Options);

  ModelBundle Bundle;
  Bundle.Lang = Art.Lang;
  Bundle.TaskKind = Art.TaskKind;
  Bundle.Extraction = Art.Extraction;
  Bundle.Interner = std::move(Art.Interner);
  crf::CrfConfig Config;
  Config.Epochs = 2;
  Bundle.Model = crf::CrfModel(Config);
  crf::ElementSelector Selector = selectorFor(Bundle.TaskKind);
  std::vector<crf::CrfGraph> Graphs;
  for (const FileRecord &Rec : Art.Files) {
    crf::CrfGraph G = buildGraphFromRecord(Rec, Selector);
    addTriFactorsFromRecord(G, Rec, Selector, *Bundle.Interner);
    Graphs.push_back(std::move(G));
  }
  Bundle.Table = std::move(Art.Table);
  Bundle.Model.train(Graphs);
  std::ostringstream OS;
  saveModel(OS, Bundle);
  return std::move(OS).str();
}

TEST(ParallelDeterminism, TrainedModelBytesAreThreadCountInvariant) {
  // Parse → extract → assemble → train → save, end to end per thread
  // count: the saved bundle (interner + table + CRF weights) must not
  // leak any trace of how many workers produced it.
  std::string Serial = modelBytesAt(1);
  ASSERT_FALSE(Serial.empty());
  for (size_t Threads : {size_t(2), size_t(4)}) {
    SCOPED_TRACE("threads=" + std::to_string(Threads));
    EXPECT_TRUE(Serial == modelBytesAt(Threads));
  }
}

TEST(ParallelDeterminism, CrfTypeExperimentIsThreadCountInvariant) {
  auto Sources = testSources(Language::Java);
  CrfExperimentOptions Options;
  Options.Extraction = tunedExtraction(Language::Java, Task::FullTypes);
  Options.Crf.Epochs = 2;

  Options.Threads = 1;
  Corpus Serial = parseCorpus(Sources, Language::Java, 1);
  ExperimentResult Base = runCrfTypeExperiment(Serial, Options);

  Options.Threads = 3;
  Corpus Sharded = parseCorpus(Sources, Language::Java, 3);
  ExperimentResult R = runCrfTypeExperiment(Sharded, Options);
  EXPECT_EQ(Base.Accuracy, R.Accuracy);
  EXPECT_EQ(Base.Predictions, R.Predictions);
  EXPECT_EQ(Base.NumFeatures, R.NumFeatures);
  EXPECT_EQ(Base.TrainContexts, R.TrainContexts);
  EXPECT_EQ(Base.DistinctPaths, R.DistinctPaths);
}

} // namespace
