//===- java_parser_test.cpp - Unit tests for the MiniJava frontend ---------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/java/JavaParser.h"

#include <gtest/gtest.h>

using namespace pigeon;
using namespace pigeon::ast;

namespace {

std::string sexprOf(std::string_view Source) {
  StringInterner SI;
  lang::ParseResult R = java::parse(Source, SI);
  EXPECT_TRUE(R.Tree.has_value());
  for (const lang::Diagnostic &D : R.Diags)
    ADD_FAILURE() << "diagnostic: " << D.str() << " in: " << Source;
  return R.Tree ? R.Tree->sexpr() : "";
}

/// Wraps a method body in a class shell and returns the sexpr of the whole
/// unit, to keep statement-level tests short.
std::string methodSexpr(std::string_view Body) {
  std::string Src = "class A { void m() { " + std::string(Body) + " } }";
  return sexprOf(Src);
}

TEST(JavaParser, EmptyClass) {
  EXPECT_EQ(sexprOf("class A {}"),
            "(CompilationUnit (ClassOrInterfaceDeclaration (SimpleName A)))");
}

TEST(JavaParser, PackageAndImports) {
  EXPECT_EQ(sexprOf("package com.example;\nimport java.util.List;\nclass A "
                    "{}"),
            "(CompilationUnit (PackageDeclaration (Name com.example)) "
            "(ImportDeclaration (Name java.util.List)) "
            "(ClassOrInterfaceDeclaration (SimpleName A)))");
}

TEST(JavaParser, FieldDeclaration) {
  EXPECT_EQ(sexprOf("class A { private int count; }"),
            "(CompilationUnit (ClassOrInterfaceDeclaration (SimpleName A) "
            "(FieldDeclaration (PrimitiveType int) (VariableDeclarator "
            "(SimpleName count)))))");
}

TEST(JavaParser, FieldWithInitializer) {
  EXPECT_EQ(sexprOf("class A { boolean done = false; }"),
            "(CompilationUnit (ClassOrInterfaceDeclaration (SimpleName A) "
            "(FieldDeclaration (PrimitiveType boolean) (VariableDeclarator "
            "(SimpleName done) (BooleanLiteralExpr false)))))");
}

TEST(JavaParser, MethodWithParams) {
  EXPECT_EQ(
      sexprOf("class A { int add(int a, int b) { return a; } }"),
      "(CompilationUnit (ClassOrInterfaceDeclaration (SimpleName A) "
      "(MethodDeclaration (PrimitiveType int) (SimpleName add) (Parameters "
      "(Parameter (PrimitiveType int) (SimpleName a)) (Parameter "
      "(PrimitiveType int) (SimpleName b))) (BlockStmt (ReturnStmt "
      "(NameExpr (SimpleName a)))))))");
}

TEST(JavaParser, GenericType) {
  EXPECT_EQ(sexprOf("class A { java.util.List<Integer> xs; }"),
            "(CompilationUnit (ClassOrInterfaceDeclaration (SimpleName A) "
            "(FieldDeclaration (ClassOrInterfaceType (TypeName "
            "java.util.List) (TypeArg (ClassOrInterfaceType (TypeName "
            "Integer)))) (VariableDeclarator (SimpleName xs)))))");
}

TEST(JavaParser, ArrayType) {
  EXPECT_EQ(sexprOf("class A { int[] data; }"),
            "(CompilationUnit (ClassOrInterfaceDeclaration (SimpleName A) "
            "(FieldDeclaration (ArrayType (PrimitiveType int)) "
            "(VariableDeclarator (SimpleName data)))))");
}

TEST(JavaParser, LocalDeclarationStatement) {
  EXPECT_NE(methodSexpr("int c = 0;")
                .find("(ExpressionStmt (VariableDeclarationExpr "
                      "(PrimitiveType int) (VariableDeclarator (SimpleName "
                      "c) (IntegerLiteralExpr 0))))"),
            std::string::npos);
}

TEST(JavaParser, PaperCountExample) {
  // Fig. 9's count method shape.
  std::string S = sexprOf(
      "class A { int count(java.util.List<Integer> x, int t) {\n"
      "  int c = 0;\n"
      "  for (int r : x) { if (r == t) { c++; } }\n"
      "  return c;\n"
      "} }");
  EXPECT_NE(S.find("(ForEachStmt (VariableDeclarationExpr (PrimitiveType "
                   "int) (VariableDeclarator (SimpleName r))) (NameExpr "
                   "(SimpleName x))"),
            std::string::npos);
  EXPECT_NE(S.find("(UnaryExprPostfix++ (NameExpr (SimpleName c)))"),
            std::string::npos);
  EXPECT_NE(S.find("(BinaryExpr== (NameExpr (SimpleName r)) (NameExpr "
                   "(SimpleName t)))"),
            std::string::npos);
}

TEST(JavaParser, WhileNotDone) {
  // Fig. 9's done example.
  std::string S = sexprOf("class A { void m() { boolean d = false; while "
                          "(!d) { if (c()) { d = true; } } } }");
  EXPECT_NE(S.find("(WhileStmt (UnaryExpr! (NameExpr (SimpleName d)))"),
            std::string::npos);
  EXPECT_NE(S.find("(Assign= (NameExpr (SimpleName d)) (BooleanLiteralExpr "
                   "true))"),
            std::string::npos);
}

TEST(JavaParser, MethodCallWithReceiver) {
  EXPECT_NE(methodSexpr("items.add(x);")
                .find("(MethodCallExpr (NameExpr (SimpleName items)) "
                      "(SimpleName add) (Arguments (NameExpr (SimpleName "
                      "x))))"),
            std::string::npos);
}

TEST(JavaParser, ChainedCalls) {
  EXPECT_NE(methodSexpr("s.trim().length();")
                .find("(MethodCallExpr (MethodCallExpr (NameExpr (SimpleName "
                      "s)) (SimpleName trim) (Arguments)) (SimpleName "
                      "length) (Arguments))"),
            std::string::npos);
}

TEST(JavaParser, StaticCall) {
  EXPECT_NE(methodSexpr("int x = Math.max(a, b);")
                .find("(MethodCallExpr (NameExpr (SimpleName Math)) "
                      "(SimpleName max) (Arguments (NameExpr (SimpleName "
                      "a)) (NameExpr (SimpleName b))))"),
            std::string::npos);
}

TEST(JavaParser, SystemOutPrintln) {
  EXPECT_NE(methodSexpr("System.out.println(msg);")
                .find("(MethodCallExpr (FieldAccessExpr (NameExpr "
                      "(SimpleName System)) (SimpleName out)) (SimpleName "
                      "println) (Arguments (NameExpr (SimpleName msg))))"),
            std::string::npos);
}

TEST(JavaParser, ObjectCreation) {
  EXPECT_NE(methodSexpr("java.util.ArrayList<String> xs = new "
                        "java.util.ArrayList<String>();")
                .find("(ObjectCreationExpr (ClassOrInterfaceType (TypeName "
                      "java.util.ArrayList) (TypeArg (ClassOrInterfaceType "
                      "(TypeName String)))) (Arguments))"),
            std::string::npos);
}

TEST(JavaParser, DiamondOperator) {
  EXPECT_NE(methodSexpr("java.util.ArrayList<String> xs = new "
                        "java.util.ArrayList<>();")
                .find("(ObjectCreationExpr (ClassOrInterfaceType (TypeName "
                      "java.util.ArrayList)) (Arguments))"),
            std::string::npos);
}

TEST(JavaParser, ArrayCreationAndAccess) {
  std::string S = methodSexpr("int[] a = new int[n]; a[0] = 1;");
  EXPECT_NE(S.find("(ArrayCreationExpr (PrimitiveType int) (NameExpr "
                   "(SimpleName n)))"),
            std::string::npos);
  EXPECT_NE(S.find("(Assign= (ArrayAccessExpr (NameExpr (SimpleName a)) "
                   "(IntegerLiteralExpr 0)) (IntegerLiteralExpr 1))"),
            std::string::npos);
}

TEST(JavaParser, CastExpression) {
  EXPECT_NE(methodSexpr("int x = (int) y;")
                .find("(CastExpr (PrimitiveType int) (NameExpr (SimpleName "
                      "y)))"),
            std::string::npos);
}

TEST(JavaParser, ParensAreNotCasts) {
  EXPECT_NE(methodSexpr("int x = (a) - b;")
                .find("(BinaryExpr- (NameExpr (SimpleName a)) (NameExpr "
                      "(SimpleName b)))"),
            std::string::npos);
}

TEST(JavaParser, TernaryExpression) {
  EXPECT_NE(methodSexpr("int m = a > b ? a : b;")
                .find("(ConditionalExpr (BinaryExpr> (NameExpr (SimpleName "
                      "a)) (NameExpr (SimpleName b))) (NameExpr (SimpleName "
                      "a)) (NameExpr (SimpleName b)))"),
            std::string::npos);
}

TEST(JavaParser, InstanceOf) {
  EXPECT_NE(methodSexpr("boolean b = x instanceof String;")
                .find("(InstanceOfExpr (NameExpr (SimpleName x)) "
                      "(ClassOrInterfaceType (TypeName String)))"),
            std::string::npos);
}

TEST(JavaParser, TryCatchFinally) {
  std::string S = methodSexpr(
      "try { f(); } catch (Exception e) { g(e); } finally { h(); }");
  EXPECT_NE(S.find("(TryStmt (BlockStmt"), std::string::npos);
  EXPECT_NE(S.find("(CatchClause (Parameter (ClassOrInterfaceType (TypeName "
                   "Exception)) (SimpleName e))"),
            std::string::npos);
  EXPECT_NE(S.find("(FinallyBlock"), std::string::npos);
}

TEST(JavaParser, Constructor) {
  std::string S = sexprOf("class Point { int x; Point(int x) { this.x = x; "
                          "} }");
  EXPECT_NE(S.find("(ConstructorDeclaration (SimpleName Point)"),
            std::string::npos);
  EXPECT_NE(S.find("(Assign= (FieldAccessExpr (ThisExpr) (SimpleName x)) "
                   "(NameExpr (SimpleName x)))"),
            std::string::npos);
}

TEST(JavaParser, InterfaceWithAbstractMethod) {
  EXPECT_EQ(sexprOf("interface Shape { double area(); }"),
            "(CompilationUnit (InterfaceDeclaration (SimpleName Shape) "
            "(MethodDeclaration (PrimitiveType double) (SimpleName area) "
            "(Parameters))))");
}

TEST(JavaParser, ExtendsClause) {
  EXPECT_NE(sexprOf("class B extends A {}")
                .find("(ExtendedType (ClassOrInterfaceType (TypeName A)))"),
            std::string::npos);
}

TEST(JavaParser, StringConcat) {
  EXPECT_NE(methodSexpr("String s = \"a\" + name;")
                .find("(BinaryExpr+ (StringLiteralExpr a) (NameExpr "
                      "(SimpleName name)))"),
            std::string::npos);
}

TEST(JavaParser, ModifiersAreSkipped) {
  EXPECT_EQ(sexprOf("public final class A { public static void m() {} }"),
            "(CompilationUnit (ClassOrInterfaceDeclaration (SimpleName A) "
            "(MethodDeclaration (PrimitiveType void) (SimpleName m) "
            "(Parameters) (BlockStmt))))");
}

TEST(JavaParser, CompoundAssignAndIncrement) {
  std::string S = methodSexpr("total += x; i++; --j;");
  EXPECT_NE(S.find("(Assign+= (NameExpr (SimpleName total)) (NameExpr "
                   "(SimpleName x)))"),
            std::string::npos);
  EXPECT_NE(S.find("(UnaryExprPostfix++ (NameExpr (SimpleName i)))"),
            std::string::npos);
  EXPECT_NE(S.find("(UnaryExpr-- (NameExpr (SimpleName j)))"),
            std::string::npos);
}

TEST(JavaParser, GenericVsComparisonDisambiguation) {
  // `a < b` must stay a comparison even though `<` could open generics.
  EXPECT_NE(methodSexpr("boolean r = a < b;")
                .find("(BinaryExpr< (NameExpr (SimpleName a)) (NameExpr "
                      "(SimpleName b)))"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Element linking
//===----------------------------------------------------------------------===//

TEST(JavaParserElements, FieldUsesResolveAcrossMethods) {
  StringInterner SI;
  lang::ParseResult R = java::parse(
      "class A { int count; void inc() { count++; } int get() { return "
      "count; } }",
      SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  for (ElementId E = 0; E < T.elements().size(); ++E) {
    if (SI.str(T.element(E).Name) != "count")
      continue;
    EXPECT_EQ(T.element(E).Kind, ElementKind::Field);
    EXPECT_EQ(T.occurrences(E).size(), 3u)
        << "declaration + two uses must merge";
  }
}

TEST(JavaParserElements, ThisFieldAccessLinksToField) {
  StringInterner SI;
  lang::ParseResult R = java::parse(
      "class A { int x; void set(int x) { this.x = x; } }", SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  int FieldOcc = 0;
  for (ElementId E = 0; E < T.elements().size(); ++E) {
    const ElementInfo &Info = T.element(E);
    if (SI.str(Info.Name) == "x" && Info.Kind == ElementKind::Field)
      FieldOcc = static_cast<int>(T.occurrences(E).size());
  }
  EXPECT_EQ(FieldOcc, 2) << "field decl + this.x must merge";
}

TEST(JavaParserElements, MethodForwardReferenceResolves) {
  StringInterner SI;
  lang::ParseResult R = java::parse(
      "class A { void a() { helper(); } void helper() {} }", SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  for (ElementId E = 0; E < T.elements().size(); ++E) {
    if (SI.str(T.element(E).Name) != "helper")
      continue;
    EXPECT_EQ(T.element(E).Kind, ElementKind::Method);
    EXPECT_TRUE(T.element(E).Predictable);
    EXPECT_EQ(T.occurrences(E).size(), 2u)
        << "call before declaration must link via member pre-scan";
  }
}

TEST(JavaParserElements, ParamsAndLocalsArePredictable) {
  StringInterner SI;
  lang::ParseResult R =
      java::parse("class A { int f(int input) { int result = input; return "
                  "result; } }",
                  SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  bool SawParam = false, SawLocal = false;
  for (ElementId E = 0; E < T.elements().size(); ++E) {
    const ElementInfo &Info = T.element(E);
    if (SI.str(Info.Name) == "input") {
      SawParam = true;
      EXPECT_EQ(Info.Kind, ElementKind::Parameter);
      EXPECT_TRUE(Info.Predictable);
    }
    if (SI.str(Info.Name) == "result") {
      SawLocal = true;
      EXPECT_EQ(Info.Kind, ElementKind::LocalVar);
      EXPECT_TRUE(Info.Predictable);
    }
  }
  EXPECT_TRUE(SawParam);
  EXPECT_TRUE(SawLocal);
}

TEST(JavaParserElements, ClassNameIsNotPredictable) {
  StringInterner SI;
  lang::ParseResult R = java::parse("class Widget {}", SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  for (ElementId E = 0; E < T.elements().size(); ++E)
    if (SI.str(T.element(E).Name) == "Widget") {
      EXPECT_FALSE(T.element(E).Predictable);
    }
}

//===----------------------------------------------------------------------===//
// Error handling
//===----------------------------------------------------------------------===//

TEST(JavaParserErrors, MissingSemicolonDiagnosed) {
  StringInterner SI;
  lang::ParseResult R = java::parse("class A { void m() { int x = 1 } }", SI);
  EXPECT_FALSE(R.Diags.empty());
}

TEST(JavaParserErrors, GarbageInputTerminates) {
  StringInterner SI;
  lang::ParseResult R = java::parse("%%%% class ((", SI);
  ASSERT_TRUE(R.Tree.has_value());
  EXPECT_FALSE(R.Diags.empty());
}

TEST(JavaParserErrors, OperatorDriftRaisesDiagnosticNotUB) {
  // `a - - - b` desynchronizes the binary-chain lookahead from the unary
  // parse (see the JS twin test); the guard must be an always-on
  // diagnostic, not a Release-stripped assert.
  StringInterner SI;
  lang::ParseResult R =
      java::parse("class C { void m() { int x = a - - - b; } }", SI);
  ASSERT_TRUE(R.Tree.has_value());
  bool SawDrift = false;
  for (const lang::Diagnostic &D : R.Diags)
    SawDrift |= D.Message.find("operator drift") != std::string::npos;
  EXPECT_TRUE(SawDrift);
}

} // namespace
