//===- crf_test.cpp - Unit tests for the CRF ---------------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/crf/Crf.h"

#include "lang/js/JsParser.h"

#include <gtest/gtest.h>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::crf;
using namespace pigeon::paths;

namespace {

ElementSelector varSelector() {
  return [](const ElementInfo &Info) {
    return Info.Predictable && (Info.Kind == ElementKind::LocalVar ||
                                Info.Kind == ElementKind::Parameter);
  };
}

/// Parses JS, extracts paths, builds a CRF graph.
struct Built {
  StringInterner &SI;
  PathTable &Table;
  std::optional<Tree> T;
  CrfGraph G;

  Built(std::string_view Source, StringInterner &SI, PathTable &Table,
        const ExtractionConfig &Config = ExtractionConfig())
      : SI(SI), Table(Table) {
    lang::ParseResult R = js::parse(Source, SI);
    EXPECT_TRUE(R.ok()) << Source;
    T = std::move(R.Tree);
    auto Contexts = extractPathContexts(*T, Config, Table);
    G = buildGraph(*T, Contexts, varSelector());
  }
};

//===----------------------------------------------------------------------===//
// Graph construction
//===----------------------------------------------------------------------===//

TEST(CrfGraphBuild, UnknownNodesAreSelectedElements) {
  StringInterner SI;
  PathTable Table;
  Built B("var done = false; while (!done) { done = true; }", SI, Table);
  ASSERT_EQ(B.G.Unknowns.size(), 1u);
  const GraphNode &N = B.G.Nodes[B.G.Unknowns[0]];
  EXPECT_FALSE(N.Known);
  EXPECT_EQ(SI.str(N.Gold), "done");
}

TEST(CrfGraphBuild, KnownNodesMergeByValue) {
  StringInterner SI;
  PathTable Table;
  Built B("f(1); g(1);", SI, Table);
  // The literal `1` appears twice but must map to one known node.
  int OnesCount = 0;
  for (const GraphNode &N : B.G.Nodes)
    if (SI.str(N.Gold) == "1")
      ++OnesCount;
  EXPECT_EQ(OnesCount, 1);
}

TEST(CrfGraphBuild, UnaryFactorsLinkSameElementOccurrences) {
  StringInterner SI;
  PathTable Table;
  Built B("var d = false; d = true;", SI, Table);
  bool SawUnary = false;
  for (const Factor &F : B.G.Factors)
    if (F.Unary) {
      SawUnary = true;
      EXPECT_EQ(F.A, F.B);
      EXPECT_FALSE(B.G.Nodes[F.A].Known);
    }
  EXPECT_TRUE(SawUnary) << "two occurrences of d must yield a unary factor";
}

TEST(CrfGraphBuild, KnownKnownFactorsDropped) {
  StringInterner SI;
  PathTable Table;
  Built B("f(1, 2);", SI, Table);
  for (const Factor &F : B.G.Factors) {
    EXPECT_FALSE(B.G.Nodes[F.A].Known && B.G.Nodes[F.B].Known)
        << "factors between two known nodes carry no signal";
  }
}

TEST(CrfGraphBuild, SemiPathAncestorsAreKnownKindNodes) {
  StringInterner SI;
  PathTable Table;
  ExtractionConfig Config;
  Config.IncludeSemiPaths = true;
  Built B("var x = 1;", SI, Table, Config);
  bool SawKindNode = false;
  for (const GraphNode &N : B.G.Nodes)
    if (N.Known && SI.str(N.Gold) == "VarDef")
      SawKindNode = true;
  EXPECT_TRUE(SawKindNode);
}

TEST(CrfGraphBuild, AdjacencyCoversAllFactors) {
  StringInterner SI;
  PathTable Table;
  Built B("var a = 1; var b = a + 2;", SI, Table);
  auto Adj = B.G.adjacency();
  size_t Mentions = 0;
  for (const auto &List : Adj)
    Mentions += List.size();
  size_t Expected = 0;
  for (const Factor &F : B.G.Factors)
    Expected += F.Unary ? 1 : 2;
  EXPECT_EQ(Mentions, Expected);
}

//===----------------------------------------------------------------------===//
// Learning end-to-end on tiny synthetic corpora
//===----------------------------------------------------------------------===//

/// The classic "loop flag" pattern with a given variable name.
std::string flagProgram(const std::string &Name) {
  return "var " + Name + " = false; while (!" + Name +
         ") { if (check()) { " + Name + " = true; } }";
}

/// A counting-loop pattern with a given variable name.
std::string counterProgram(const std::string &Name) {
  return "var " + Name + " = 0; for (var i = 0; i < n; i++) { " + Name +
         " += 1; }";
}

TEST(CrfLearning, LearnsRoleConditionedNames) {
  StringInterner SI;
  PathTable Table;
  ExtractionConfig Config;
  std::vector<CrfGraph> TrainGraphs;
  std::vector<std::optional<Tree>> Keep; // Trees must outlive graphs.
  // Training: flags named done, counters named count.
  for (int I = 0; I < 6; ++I) {
    for (const std::string &Src :
         {flagProgram("done"), counterProgram("count")}) {
      lang::ParseResult R = js::parse(Src, SI);
      ASSERT_TRUE(R.ok());
      Keep.push_back(std::move(R.Tree));
      auto Contexts = extractPathContexts(*Keep.back(), Config, Table);
      TrainGraphs.push_back(
          buildGraph(*Keep.back(), Contexts, varSelector()));
    }
  }
  CrfModel Model;
  Model.train(TrainGraphs);
  EXPECT_GT(Model.numFeatures(), 0u);

  // Test on the same patterns with stripped names.
  auto PredictName = [&](const std::string &Src) -> std::string {
    lang::ParseResult R = js::parse(Src, SI);
    EXPECT_TRUE(R.ok());
    auto Contexts = extractPathContexts(*R.Tree, Config, Table);
    CrfGraph G = buildGraph(*R.Tree, Contexts, varSelector());
    // Find the unknown node corresponding to the stripped variable `d`.
    std::vector<Symbol> Pred = Model.predict(G);
    for (uint32_t N : G.Unknowns)
      if (SI.str(G.Nodes[N].Gold) == "d")
        return std::string(Pred[N].isValid() ? SI.str(Pred[N])
                                               : std::string_view());
    return "";
  };
  EXPECT_EQ(PredictName(flagProgram("d")), "done");
  EXPECT_EQ(PredictName(counterProgram("d")), "count");
}

TEST(CrfLearning, TopKContainsGoldNearTop) {
  StringInterner SI;
  PathTable Table;
  ExtractionConfig Config;
  std::vector<CrfGraph> TrainGraphs;
  std::vector<std::optional<Tree>> Keep;
  for (int I = 0; I < 4; ++I) {
    for (const std::string &Name : {"done", "finished", "stop"}) {
      lang::ParseResult R = js::parse(flagProgram(Name), SI);
      ASSERT_TRUE(R.ok());
      Keep.push_back(std::move(R.Tree));
      auto Contexts = extractPathContexts(*Keep.back(), Config, Table);
      TrainGraphs.push_back(
          buildGraph(*Keep.back(), Contexts, varSelector()));
    }
  }
  CrfModel Model;
  Model.train(TrainGraphs);

  lang::ParseResult R = js::parse(flagProgram("d"), SI);
  ASSERT_TRUE(R.ok());
  auto Contexts = extractPathContexts(*R.Tree, Config, Table);
  CrfGraph G = buildGraph(*R.Tree, Contexts, varSelector());
  ASSERT_EQ(G.Unknowns.size(), 1u);
  std::vector<Symbol> Pred = Model.predict(G);
  auto Top = Model.topK(G, G.Unknowns[0], Pred, 3);
  ASSERT_GE(Top.size(), 3u);
  // All three flag-style names must appear among the top candidates.
  std::set<std::string> Names;
  for (const auto &[Label, Score] : Top)
    Names.insert(std::string(SI.str(Label)));
  EXPECT_TRUE(Names.count("done"));
  EXPECT_TRUE(Names.count("finished"));
  EXPECT_TRUE(Names.count("stop"));
}

TEST(CrfLearning, DistinguishesFig3Pair) {
  // The paper's Fig. 3 motivating pair: train flags as `done` and
  // straight-line reassigned vars as `flag`; the model must tell the two
  // programs apart (UnuglifyJS-style single-statement relations cannot).
  StringInterner SI;
  PathTable Table;
  ExtractionConfig Config;
  std::vector<CrfGraph> TrainGraphs;
  std::vector<std::optional<Tree>> Keep;
  auto StraightLine = [](const std::string &Name) {
    return "someCondition(); doSomething(); var " + Name + " = false; " +
           Name + " = true;";
  };
  auto Loop = [](const std::string &Name) {
    return "var " + Name + " = false; while (!" + Name +
           ") { doSomething(); if (someCondition()) { " + Name +
           " = true; } }";
  };
  for (int I = 0; I < 6; ++I) {
    for (const std::string &Src : {Loop("done"), StraightLine("flag")}) {
      lang::ParseResult R = js::parse(Src, SI);
      ASSERT_TRUE(R.ok());
      Keep.push_back(std::move(R.Tree));
      auto Contexts = extractPathContexts(*Keep.back(), Config, Table);
      TrainGraphs.push_back(
          buildGraph(*Keep.back(), Contexts, varSelector()));
    }
  }
  CrfModel Model;
  Model.train(TrainGraphs);

  auto PredictName = [&](const std::string &Src) -> std::string {
    lang::ParseResult R = js::parse(Src, SI);
    EXPECT_TRUE(R.ok());
    auto Contexts = extractPathContexts(*R.Tree, Config, Table);
    CrfGraph G = buildGraph(*R.Tree, Contexts, varSelector());
    std::vector<Symbol> Pred = Model.predict(G);
    for (uint32_t N : G.Unknowns)
      if (SI.str(G.Nodes[N].Gold) == "d")
        return std::string(Pred[N].isValid() ? SI.str(Pred[N])
                                               : std::string_view());
    return "";
  };
  EXPECT_EQ(PredictName(Loop("d")), "done");
  EXPECT_EQ(PredictName(StraightLine("d")), "flag");
}

TEST(CrfLearning, MultipleUnknownsJointlyInferred) {
  StringInterner SI;
  PathTable Table;
  ExtractionConfig Config;
  std::vector<CrfGraph> TrainGraphs;
  std::vector<std::optional<Tree>> Keep;
  auto Pair = [](const std::string &Arr, const std::string &Idx) {
    return "function f(" + Arr + ") { for (var " + Idx + " = 0; " + Idx +
           " < " + Arr + ".length; " + Idx + "++) { use(" + Arr + "[" +
           Idx + "]); } }";
  };
  for (int I = 0; I < 8; ++I) {
    lang::ParseResult R = js::parse(Pair("items", "i"), SI);
    ASSERT_TRUE(R.ok());
    Keep.push_back(std::move(R.Tree));
    auto Contexts = extractPathContexts(*Keep.back(), Config, Table);
    TrainGraphs.push_back(buildGraph(*Keep.back(), Contexts, varSelector()));
  }
  CrfModel Model;
  Model.train(TrainGraphs);

  lang::ParseResult R = js::parse(Pair("a", "b"), SI);
  ASSERT_TRUE(R.ok());
  auto Contexts = extractPathContexts(*R.Tree, Config, Table);
  CrfGraph G = buildGraph(*R.Tree, Contexts, varSelector());
  ASSERT_EQ(G.Unknowns.size(), 2u);
  std::vector<Symbol> Pred = Model.predict(G);
  std::set<std::string> Names;
  for (uint32_t N : G.Unknowns)
    Names.insert(std::string(SI.str(Pred[N])));
  EXPECT_TRUE(Names.count("items"));
  EXPECT_TRUE(Names.count("i"));
}

TEST(CrfLearning, EmptyTrainingIsSafe) {
  CrfModel Model;
  Model.train({});
  EXPECT_EQ(Model.numFeatures(), 0u);
  StringInterner SI;
  PathTable Table;
  Built B("var x = 1;", SI, Table);
  std::vector<Symbol> Pred = Model.predict(B.G);
  EXPECT_EQ(Pred.size(), B.G.Nodes.size());
}

TEST(CrfLearning, DeterministicAcrossRuns) {
  auto Run = [](std::vector<std::string> &OutNames) {
    StringInterner SI;
    PathTable Table;
    ExtractionConfig Config;
    std::vector<CrfGraph> TrainGraphs;
    std::vector<std::optional<Tree>> Keep;
    for (int I = 0; I < 4; ++I) {
      for (const std::string &Src :
           {flagProgram("done"), counterProgram("count")}) {
        lang::ParseResult R = js::parse(Src, SI);
        Keep.push_back(std::move(R.Tree));
        auto Contexts = extractPathContexts(*Keep.back(), Config, Table);
        TrainGraphs.push_back(
            buildGraph(*Keep.back(), Contexts, varSelector()));
      }
    }
    CrfModel Model;
    Model.train(TrainGraphs);
    lang::ParseResult R = js::parse(flagProgram("d"), SI);
    auto Contexts = extractPathContexts(*R.Tree, Config, Table);
    CrfGraph G = buildGraph(*R.Tree, Contexts, varSelector());
    std::vector<Symbol> Pred = Model.predict(G);
    for (uint32_t N : G.Unknowns)
      OutNames.emplace_back(SI.str(Pred[N]));
  };
  std::vector<std::string> A, B;
  Run(A);
  Run(B);
  EXPECT_EQ(A, B);
}

//===----------------------------------------------------------------------===//
// Feature hashing
//===----------------------------------------------------------------------===//

TEST(CrfFeatures, PairKeyIsOrderSensitive) {
  Symbol A = Symbol::fromIndex(1), B = Symbol::fromIndex(2);
  EXPECT_NE(pairKey(7, A, B), pairKey(7, B, A));
}

TEST(CrfFeatures, KeysSeparateSpaces) {
  Symbol A = Symbol::fromIndex(1);
  EXPECT_NE(unaryKey(7, A), pairKey(7, A, A));
  EXPECT_NE(contextKey(7, true, A), contextKey(7, false, A));
}

} // namespace
