//===- datagen_test.cpp - Unit tests for the corpus generator --------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "datagen/DomainClasses.h"
#include "datagen/Names.h"
#include "datagen/Sketch.h"

#include "lang/csharp/CsParser.h"
#include "lang/java/JavaParser.h"
#include "lang/java/TypeChecker.h"
#include "lang/js/JsParser.h"
#include "lang/python/PyParser.h"

#include <gtest/gtest.h>

#include <set>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::datagen;
using pigeon::lang::Language;

namespace {

lang::ParseResult parseAs(Language Lang, const std::string &Text,
                          StringInterner &SI) {
  switch (Lang) {
  case Language::JavaScript:
    return js::parse(Text, SI);
  case Language::Java:
    return java::parse(Text, SI);
  case Language::Python:
    return py::parse(Text, SI);
  case Language::CSharp:
    return cs::parse(Text, SI);
  }
  return {};
}

CorpusSpec smallSpec(Language Lang) {
  CorpusSpec Spec = defaultSpec(Lang, /*Seed=*/7);
  Spec.NumProjects = 4;
  Spec.FilesPerProject = 3;
  Spec.FunctionsPerFile = 4;
  return Spec;
}

//===----------------------------------------------------------------------===//
// Name utilities
//===----------------------------------------------------------------------===//

TEST(DatagenNames, CaseConversions) {
  EXPECT_EQ(capitalize("count"), "Count");
  EXPECT_EQ(toSnakeCase("countMatches"), "count_matches");
  EXPECT_EQ(toSnakeCase("i"), "i");
  EXPECT_EQ(toPascalCase("countMatches"), "CountMatches");
  EXPECT_EQ(toPascalCase("sum"), "Sum");
}

TEST(DatagenNames, PoolsAreNonEmptyForAllRoles) {
  for (int R = 0; R <= static_cast<int>(Role::Field); ++R)
    for (Language Lang : {Language::JavaScript, Language::Java,
                          Language::Python, Language::CSharp})
      EXPECT_FALSE(rolePool(static_cast<Role>(R), Lang).Entries.empty());
}

TEST(DatagenNames, SamplerRespectsNoise) {
  CorpusSpec Spec = defaultSpec(Language::JavaScript, 1);
  Spec.NoiseProb = 1.0; // Always noise.
  Rng R(1);
  NameSampler S(Spec, 0, R);
  std::set<std::string> NoiseSet = {"x", "tmp", "val", "data", "obj", "a"};
  for (int I = 0; I < 20; ++I)
    EXPECT_TRUE(NoiseSet.count(S.sample(Role::Counter)));
}

TEST(DatagenNames, CompoundComposition) {
  CorpusSpec Spec = defaultSpec(Language::Java, 1);
  Spec.NoiseProb = 0;
  Spec.CompoundProb = 1.0;
  Spec.DriftProb = 0;
  Rng R(1);
  NameSampler S(Spec, 0, R);
  std::string Name = S.sample(Role::Counter, "item");
  EXPECT_EQ(Name.rfind("item", 0), 0u) << Name;
  EXPECT_NE(Name, "item");
}

//===----------------------------------------------------------------------===//
// Corpus generation
//===----------------------------------------------------------------------===//

TEST(DatagenCorpus, DeterministicForFixedSeed) {
  CorpusSpec Spec = smallSpec(Language::JavaScript);
  auto A = generateCorpus(Spec);
  auto B = generateCorpus(Spec);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I].Text, B[I].Text);
}

TEST(DatagenCorpus, DifferentSeedsDiffer) {
  CorpusSpec SpecA = smallSpec(Language::JavaScript);
  CorpusSpec SpecB = SpecA;
  SpecB.Seed = SpecA.Seed + 1;
  auto A = generateCorpus(SpecA);
  auto B = generateCorpus(SpecB);
  bool AnyDiff = false;
  for (size_t I = 0; I < A.size(); ++I)
    AnyDiff |= (A[I].Text != B[I].Text);
  EXPECT_TRUE(AnyDiff);
}

TEST(DatagenCorpus, ExpectedFileCount) {
  CorpusSpec Spec = smallSpec(Language::Python);
  auto Files = generateCorpus(Spec);
  EXPECT_EQ(Files.size(), static_cast<size_t>(Spec.NumProjects *
                                              Spec.FilesPerProject));
}

TEST(DatagenCorpus, EveryFileParsesInItsLanguage) {
  for (Language Lang : {Language::JavaScript, Language::Java,
                        Language::Python, Language::CSharp}) {
    CorpusSpec Spec = smallSpec(Lang);
    StringInterner SI;
    for (const SourceFile &File : generateCorpus(Spec)) {
      lang::ParseResult R = parseAs(Lang, File.Text, SI);
      EXPECT_TRUE(R.Tree.has_value());
      for (const lang::Diagnostic &D : R.Diags)
        ADD_FAILURE() << lang::languageName(Lang) << " " << File.FileName
                      << ": " << D.str() << "\n"
                      << File.Text;
      if (!R.Diags.empty())
        break; // One bad file prints enough context.
    }
  }
}

TEST(DatagenCorpus, ParsedFilesHavePredictableElements) {
  CorpusSpec Spec = smallSpec(Language::JavaScript);
  StringInterner SI;
  size_t TotalPredictable = 0;
  for (const SourceFile &File : generateCorpus(Spec)) {
    lang::ParseResult R = parseAs(Language::JavaScript, File.Text, SI);
    ASSERT_TRUE(R.Tree.has_value());
    for (const ElementInfo &Info : R.Tree->elements())
      if (Info.Predictable && (Info.Kind == ElementKind::LocalVar ||
                               Info.Kind == ElementKind::Parameter))
        ++TotalPredictable;
  }
  EXPECT_GT(TotalPredictable, 50u);
}

TEST(DatagenCorpus, JavaFilesTypeAnnotate) {
  CorpusSpec Spec = smallSpec(Language::Java);
  StringInterner SI;
  java::ClassPath CP = java::ClassPath::standard();
  addDomainClasses(CP);
  size_t TotalTyped = 0;
  for (const SourceFile &File : generateCorpus(Spec)) {
    lang::ParseResult R = parseAs(Language::Java, File.Text, SI);
    ASSERT_TRUE(R.Tree.has_value());
    ASSERT_TRUE(R.Diags.empty()) << File.Text;
    TotalTyped += java::annotateTypes(*R.Tree, CP);
  }
  EXPECT_GT(TotalTyped, 200u) << "the type oracle must label many nodes";
}

TEST(DatagenCorpus, StringTypeShareIsMeaningful) {
  // The java.lang.String naive baseline (§5.3.3) only makes sense if
  // String is common but not dominant among ground-truth types.
  CorpusSpec Spec = smallSpec(Language::Java);
  Spec.NumProjects = 6;
  StringInterner SI;
  java::ClassPath CP = java::ClassPath::standard();
  addDomainClasses(CP);
  size_t Total = 0, Strings = 0;
  for (const SourceFile &File : generateCorpus(Spec)) {
    lang::ParseResult R = parseAs(Language::Java, File.Text, SI);
    ASSERT_TRUE(R.Tree.has_value());
    java::annotateTypes(*R.Tree, CP);
    for (NodeId Id : R.Tree->typedNodes()) {
      ++Total;
      if (SI.str(R.Tree->typeOf(Id)) == "java.lang.String")
        ++Strings;
    }
  }
  ASSERT_GT(Total, 0u);
  double Share = static_cast<double>(Strings) / static_cast<double>(Total);
  EXPECT_GT(Share, 0.05);
  EXPECT_LT(Share, 0.6);
}

TEST(DatagenCorpus, StrippedRenderingReplacesVariableNames) {
  CorpusSpec Spec = smallSpec(Language::JavaScript);
  auto Files = generateCorpus(Spec);
  ASSERT_FALSE(Files.empty());
  const FileSketch &Sketch = Files[0].Sketch;
  std::string Stripped = render(Sketch, Language::JavaScript,
                                /*StripNames=*/true);
  StringInterner SI;
  lang::ParseResult R = parseAs(Language::JavaScript, Stripped, SI);
  EXPECT_TRUE(R.Tree.has_value());
  EXPECT_TRUE(R.Diags.empty()) << Stripped;
  // Method names survive stripping; helper calls survive too.
  for (const IdiomInstance &F : Sketch.Functions)
    EXPECT_NE(Stripped.find(F.MethodName), std::string::npos)
        << "method names are not stripped";
}

TEST(DatagenCorpus, ProjectsVaryNamingViaDrift) {
  CorpusSpec Spec = smallSpec(Language::JavaScript);
  Spec.NumProjects = 24;
  Spec.FilesPerProject = 4;
  Spec.DriftProb = 1.0; // Every sample takes the project preference.
  auto Files = generateCorpus(Spec);
  // Collect the flag names used per project for LoopFlag idioms.
  std::map<std::string, std::set<std::string>> FlagsByProject;
  for (const SourceFile &File : Files)
    for (const IdiomInstance &F : File.Sketch.Functions)
      if (F.Kind == IdiomKind::LoopFlag)
        FlagsByProject[File.Project].insert(F.name("flag"));
  std::set<std::string> AllFlags;
  for (const auto &[Proj, Flags] : FlagsByProject)
    AllFlags.insert(Flags.begin(), Flags.end());
  // With full drift each project is internally consistent (modulo noise),
  // while different projects may prefer different synonyms.
  EXPECT_GE(AllFlags.size(), 2u);
}

TEST(DatagenCorpus, IdiomNamesAreStable) {
  EXPECT_STREQ(idiomName(IdiomKind::LoopFlag), "loop-flag");
  EXPECT_STREQ(idiomName(IdiomKind::MapLookup), "map-lookup");
}

TEST(DatagenCorpus, DefaultSpecsDifferPerLanguage) {
  EXPECT_LT(defaultSpec(Language::JavaScript).NoiseProb,
            defaultSpec(Language::Python).NoiseProb);
  EXPECT_GT(defaultSpec(Language::Java).CompoundProb,
            defaultSpec(Language::JavaScript).CompoundProb);
}

} // namespace
