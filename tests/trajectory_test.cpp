//===- trajectory_test.cpp - Unit tests for support/Trajectory -------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Trajectory.h"

#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace pigeon;
using namespace pigeon::bench;

namespace {

/// A realistic sidecar: a private registry rendered through the real
/// pigeon.metrics.v1 writer, then parsed back — the exact path
/// bench_report takes.
json::Value sidecarFor(double ParseSumSeconds, int ParseCount,
                       double PairsPerSec, double Accuracy) {
  telemetry::MetricsRegistry Reg;
  Reg.counter("parse.files.ok").add(ParseCount);
  Reg.gauge("sgns.pairs_per_sec").set(PairsPerSec);
  Reg.gauge("pipeline.extract.speedup").set(3.1);
  Reg.gauge("eval.vars.accuracy").set(Accuracy);
  Reg.gauge("serve.latency_ms.p99.concurrent").set(42.5);
  Reg.gauge("serve.latency_ms.p99.single").set(30.25);
  Reg.gauge("process.rss.peak.kb").set(123456);
  Reg.gauge("parallel.bench.cores").set(4);
  Reg.gauge("crf.features").set(999); // neither throughput nor accuracy
  telemetry::Histogram &H =
      Reg.histogram("parse.wall.seconds", telemetry::timeBounds());
  for (int I = 0; I < ParseCount; ++I)
    H.observe(ParseSumSeconds / ParseCount);
  Reg.histogram("paths.length", telemetry::linearBounds(1, 9)).observe(3);
  std::ostringstream OS;
  Reg.writeJson(OS);
  std::optional<json::Value> Doc = json::parse(OS.str());
  EXPECT_TRUE(Doc.has_value());
  return std::move(*Doc);
}

} // namespace

TEST(FoldSidecar, AppliesTheFoldingRules) {
  BenchRecord Rec = foldSidecar("bench_x", sidecarFor(2.0, 8, 5000, 0.82));

  EXPECT_EQ(Rec.Bench, "bench_x");
  // per_sec / .speedup gauges plus the derived stage throughput.
  ASSERT_EQ(Rec.Throughput.count("sgns.pairs_per_sec"), 1u);
  EXPECT_DOUBLE_EQ(Rec.Throughput["sgns.pairs_per_sec"], 5000.0);
  EXPECT_EQ(Rec.Throughput.count("pipeline.extract.speedup"), 1u);
  ASSERT_EQ(Rec.Throughput.count("parse.per_sec"), 1u);
  EXPECT_NEAR(Rec.Throughput["parse.per_sec"], 8.0 / 2.0, 1e-9);
  // Only *.wall.seconds histograms become phases.
  ASSERT_EQ(Rec.Phases.count("parse"), 1u);
  EXPECT_EQ(Rec.Phases.count("paths.length"), 0u);
  EXPECT_EQ(Rec.Phases["parse"].Count, 8u);
  EXPECT_NEAR(Rec.Phases["parse"].Sum, 2.0, 1e-9);
  EXPECT_GT(Rec.Phases["parse"].P50, 0.0);
  // Accuracy gauges and the RSS gauge land in their own slots.
  ASSERT_EQ(Rec.Accuracy.count("eval.vars.accuracy"), 1u);
  EXPECT_DOUBLE_EQ(Rec.Accuracy["eval.vars.accuracy"], 0.82);
  // latency_ms gauges fold into Latency, not Throughput — the gate
  // direction differs.
  ASSERT_EQ(Rec.Latency.count("serve.latency_ms.p99.concurrent"), 1u);
  EXPECT_DOUBLE_EQ(Rec.Latency["serve.latency_ms.p99.concurrent"], 42.5);
  EXPECT_EQ(Rec.Latency.count("serve.latency_ms.p99.single"), 1u);
  EXPECT_EQ(Rec.Throughput.count("serve.latency_ms.p99.concurrent"), 0u);
  EXPECT_EQ(Rec.RssPeakKb, 123456u);
  EXPECT_EQ(Rec.Cores, 4u);
  // The cores gauge is bench metadata, not a throughput metric.
  EXPECT_EQ(Rec.Throughput.count("parallel.bench.cores"), 0u);
  // Unrelated gauges fold nowhere.
  EXPECT_EQ(Rec.Throughput.count("crf.features"), 0u);
  EXPECT_EQ(Rec.Accuracy.count("crf.features"), 0u);
}

TEST(FoldSidecar, TolerantOfForeignDocuments) {
  std::optional<json::Value> Doc =
      json::parse("{\"gauges\":[1,2],\"histograms\":{\"x.wall.seconds\":3}}");
  ASSERT_TRUE(Doc);
  BenchRecord Rec = foldSidecar("odd", *Doc);
  EXPECT_TRUE(Rec.Throughput.empty());
  EXPECT_TRUE(Rec.Phases.empty());
}

TEST(Trajectory, WriteParseRoundTrip) {
  Trajectory T;
  T.Stamp = "2026-08-06";
  T.Benches.push_back(foldSidecar("bench_a", sidecarFor(1.0, 4, 100, 0.5)));
  T.Benches.push_back(foldSidecar("bench_b", sidecarFor(4.0, 4, 250, 0.9)));

  std::ostringstream OS;
  writeTrajectory(OS, T);
  std::string Error;
  std::optional<json::Value> Doc = json::parse(OS.str(), &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  EXPECT_EQ(Doc->find("schema")->str(), "pigeon.bench.v1");

  std::optional<Trajectory> Back = parseTrajectory(*Doc);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Stamp, T.Stamp);
  ASSERT_EQ(Back->Benches.size(), 2u);
  for (size_t I = 0; I < 2; ++I) {
    EXPECT_EQ(Back->Benches[I].Bench, T.Benches[I].Bench);
    EXPECT_EQ(Back->Benches[I].Throughput, T.Benches[I].Throughput);
    EXPECT_EQ(Back->Benches[I].Accuracy, T.Benches[I].Accuracy);
    EXPECT_EQ(Back->Benches[I].Latency, T.Benches[I].Latency);
    EXPECT_EQ(Back->Benches[I].RssPeakKb, T.Benches[I].RssPeakKb);
    EXPECT_EQ(Back->Benches[I].Cores, T.Benches[I].Cores);
    ASSERT_EQ(Back->Benches[I].Phases.size(), T.Benches[I].Phases.size());
    for (const auto &[Stage, S] : T.Benches[I].Phases) {
      const PhaseStats &B = Back->Benches[I].Phases.at(Stage);
      EXPECT_DOUBLE_EQ(B.Sum, S.Sum);
      EXPECT_EQ(B.Count, S.Count);
    }
  }
}

TEST(Trajectory, ParseRejectsForeignSchemas) {
  std::optional<json::Value> NotOurs =
      json::parse("{\"schema\":\"pigeon.metrics.v1\",\"benches\":[]}");
  ASSERT_TRUE(NotOurs);
  EXPECT_FALSE(parseTrajectory(*NotOurs).has_value());
  std::optional<json::Value> NoBenches =
      json::parse("{\"schema\":\"pigeon.bench.v1\"}");
  ASSERT_TRUE(NoBenches);
  EXPECT_FALSE(parseTrajectory(*NoBenches).has_value());
}

//===----------------------------------------------------------------------===//
// Regression gate
//===----------------------------------------------------------------------===//

namespace {

Trajectory trajectoryWith(double PerSec, double Accuracy) {
  Trajectory T;
  T.Stamp = "stamp";
  BenchRecord Rec;
  Rec.Bench = "bench_a";
  Rec.Throughput["parse.per_sec"] = PerSec;
  Rec.Throughput["sgns.pairs_per_sec"] = 1000.0;
  Rec.Accuracy["eval.vars.accuracy"] = Accuracy;
  T.Benches.push_back(Rec);
  return T;
}

} // namespace

TEST(RegressionGate, FailsASyntheticSlowdownOverThreshold) {
  Trajectory Before = trajectoryWith(100.0, 0.8);
  // 15% throughput drop against a 10% gate: must be flagged.
  Trajectory After = trajectoryWith(85.0, 0.8);
  std::vector<Regression> R = compareTrajectories(Before, After, 0.10);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Bench, "bench_a");
  EXPECT_EQ(R[0].Metric, "parse.per_sec");
  EXPECT_DOUBLE_EQ(R[0].Before, 100.0);
  EXPECT_DOUBLE_EQ(R[0].After, 85.0);
  EXPECT_NEAR(R[0].Ratio, 0.85, 1e-9);
}

TEST(RegressionGate, ToleratesDropsWithinThreshold) {
  Trajectory Before = trajectoryWith(100.0, 0.8);
  EXPECT_TRUE(
      compareTrajectories(Before, trajectoryWith(95.0, 0.8), 0.10).empty());
  // Exactly at the boundary is not a regression (strict <).
  EXPECT_TRUE(
      compareTrajectories(Before, trajectoryWith(90.0, 0.10), 0.10).empty());
  // Improvements never trip the gate.
  EXPECT_TRUE(
      compareTrajectories(Before, trajectoryWith(140.0, 0.8), 0.10).empty());
}

TEST(RegressionGate, AccuracyIsNotGated) {
  // Accuracy halves, throughput holds: phases/accuracy are reported but
  // not gated (too machine- or seed-sensitive for a hard CI failure).
  Trajectory Before = trajectoryWith(100.0, 0.8);
  Trajectory After = trajectoryWith(100.0, 0.4);
  EXPECT_TRUE(compareTrajectories(Before, After, 0.10).empty());
}

TEST(RegressionGate, IgnoresUnmatchedBenchesAndMetrics) {
  Trajectory Before = trajectoryWith(100.0, 0.8);
  Trajectory After = trajectoryWith(50.0, 0.8);
  After.Benches[0].Bench = "bench_new"; // no previous record
  EXPECT_TRUE(compareTrajectories(Before, After, 0.10).empty());

  Trajectory Mixed = trajectoryWith(100.0, 0.8);
  Mixed.Benches[0].Throughput.erase("parse.per_sec");
  Mixed.Benches[0].Throughput["brand.new.per_sec"] = 1.0;
  EXPECT_TRUE(compareTrajectories(Before, Mixed, 0.10).empty());
}

TEST(RegressionGate, SkipsNonPositiveBaselines) {
  Trajectory Before = trajectoryWith(0.0, 0.8);
  Trajectory After = trajectoryWith(0.0, 0.8);
  After.Benches[0].Throughput["parse.per_sec"] = 0.0;
  EXPECT_TRUE(compareTrajectories(Before, After, 0.10).empty());
}

//===----------------------------------------------------------------------===//
// Speedup floor
//===----------------------------------------------------------------------===//

namespace {

Trajectory speedupTrajectory(double ParseSpeedup, double ExtractSpeedup,
                             uint64_t Cores) {
  Trajectory T;
  T.Stamp = "stamp";
  BenchRecord Rec;
  Rec.Bench = "bench_parallel";
  Rec.Cores = Cores;
  Rec.Throughput["parallel.parse.speedup"] = ParseSpeedup;
  Rec.Throughput["parallel.extract.speedup"] = ExtractSpeedup;
  Rec.Throughput["parse.per_sec"] = 500.0; // Never floored.
  T.Benches.push_back(Rec);
  return T;
}

} // namespace

TEST(SpeedupFloor, FailsANegativeSpeedupWithNoHistory) {
  // The bug this PR fixes: a "parallel" run 15% *slower* than serial.
  // The floor must catch it from the current snapshot alone — no
  // previous trajectory to diff against.
  std::vector<Regression> R =
      speedupFloor(speedupTrajectory(0.85, 2.6, /*Cores=*/4));
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Bench, "bench_parallel");
  EXPECT_EQ(R[0].Metric, "parallel.parse.speedup");
  EXPECT_DOUBLE_EQ(R[0].Before, 1.0); // The floor itself.
  EXPECT_DOUBLE_EQ(R[0].After, 0.85);
}

TEST(SpeedupFloor, PassesHealthySpeedups) {
  EXPECT_TRUE(speedupFloor(speedupTrajectory(2.1, 2.8, 4)).empty());
  // Exactly at the floor passes (strict <).
  EXPECT_TRUE(speedupFloor(speedupTrajectory(1.0, 1.0, 4)).empty());
}

TEST(SpeedupFloor, ExemptsSingleCoreRecordsOnly) {
  // One core: 0.9x is the honest cost of sharding, not a regression.
  EXPECT_TRUE(speedupFloor(speedupTrajectory(0.9, 0.95, 1)).empty());
  // No recorded core count gets no benefit of the doubt.
  std::vector<Regression> R = speedupFloor(speedupTrajectory(0.9, 0.95, 0));
  EXPECT_EQ(R.size(), 2u);
}

TEST(SpeedupFloor, OnlyParallelSpeedupMetricsAreFloored) {
  // A non-parallel gauge that happens to end in .speedup, and ordinary
  // per_sec throughput, sit outside the floor's contract.
  Trajectory T = speedupTrajectory(2.0, 2.0, 4);
  T.Benches[0].Throughput["cache.hit.speedup"] = 0.5;
  T.Benches[0].Throughput["parse.per_sec"] = 0.001;
  EXPECT_TRUE(speedupFloor(T).empty());
}

TEST(SpeedupFloor, HonorsACustomFloor) {
  std::vector<Regression> R =
      speedupFloor(speedupTrajectory(2.2, 2.4, 4), /*Floor=*/2.5);
  ASSERT_EQ(R.size(), 2u);
  EXPECT_DOUBLE_EQ(R[0].Before, 2.5);
}

//===----------------------------------------------------------------------===//
// Latency gates
//===----------------------------------------------------------------------===//

namespace {

Trajectory latencyTrajectory(double P99Concurrent, double P99Single) {
  Trajectory T;
  T.Stamp = "stamp";
  BenchRecord Rec;
  Rec.Bench = "bench_serve";
  Rec.Latency["serve.latency_ms.p50.concurrent"] = P99Concurrent / 2;
  Rec.Latency["serve.latency_ms.p99.concurrent"] = P99Concurrent;
  Rec.Latency["serve.latency_ms.p99.single"] = P99Single;
  Rec.Throughput["serve.requests_per_sec"] = 200.0;
  T.Benches.push_back(Rec);
  return T;
}

} // namespace

TEST(RegressionGate, FlagsALatencyIncreaseOverThreshold) {
  // Throughput holds but tail latency gains 50% against a 10% gate —
  // exactly the trade a throughput-only diff would wave through.
  Trajectory Before = latencyTrajectory(100.0, 40.0);
  Trajectory After = latencyTrajectory(150.0, 40.0);
  std::vector<Regression> R = compareTrajectories(Before, After, 0.10);
  ASSERT_EQ(R.size(), 2u); // p50 and p99 both moved by the same factor.
  EXPECT_EQ(R[0].Bench, "bench_serve");
  EXPECT_EQ(R[0].Metric, "serve.latency_ms.p50.concurrent");
  EXPECT_EQ(R[1].Metric, "serve.latency_ms.p99.concurrent");
  EXPECT_DOUBLE_EQ(R[1].Before, 100.0);
  EXPECT_DOUBLE_EQ(R[1].After, 150.0);
  EXPECT_NEAR(R[1].Ratio, 1.5, 1e-9);
}

TEST(RegressionGate, LatencyImprovementsAndSmallDriftPass) {
  Trajectory Before = latencyTrajectory(100.0, 40.0);
  // 5% drift under a 10% gate, and a clean improvement.
  EXPECT_TRUE(
      compareTrajectories(Before, latencyTrajectory(105.0, 42.0), 0.10)
          .empty());
  EXPECT_TRUE(
      compareTrajectories(Before, latencyTrajectory(60.0, 20.0), 0.10)
          .empty());
}

TEST(LatencyCeiling, FailsTailAboveTheCeilingFromOneSnapshot) {
  std::vector<Regression> R =
      latencyCeiling(latencyTrajectory(320.0, 50.0), /*CeilingMs=*/250.0);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Bench, "bench_serve");
  EXPECT_EQ(R[0].Metric, "serve.latency_ms.p99.concurrent");
  EXPECT_DOUBLE_EQ(R[0].Before, 250.0); // The ceiling itself.
  EXPECT_DOUBLE_EQ(R[0].After, 320.0);
  EXPECT_NEAR(R[0].Ratio, 320.0 / 250.0, 1e-9);
}

TEST(LatencyCeiling, ExemptsSingleClientAndNonTailSeries) {
  // p99.single blows through the ceiling, p50 too: neither is gated —
  // the ceiling is an SLO on the batched tail.
  Trajectory T = latencyTrajectory(200.0, 900.0);
  T.Benches[0].Latency["serve.latency_ms.p50.concurrent"] = 400.0;
  EXPECT_TRUE(latencyCeiling(T, 250.0).empty());
}

TEST(LatencyCeiling, ZeroCeilingDisablesTheGate) {
  EXPECT_TRUE(latencyCeiling(latencyTrajectory(5000.0, 5000.0), 0).empty());
}
