//===- windowed_test.cpp - Unit tests for support/WindowedHistogram --------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/WindowedHistogram.h"

#include "support/Json.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using namespace pigeon;
using namespace pigeon::telemetry;

namespace {

std::vector<double> smallBounds() { return {1, 2, 4, 8}; }

} // namespace

TEST(Windowed, Shape) {
  WindowedHistogram W(smallBounds(), /*Slices=*/3, /*SliceSeconds=*/10.0);
  EXPECT_EQ(W.numSlices(), 3u);
  EXPECT_EQ(W.sliceSeconds(), 10.0);
  EXPECT_EQ(W.windowSeconds(), 30.0);
}

TEST(Windowed, EmptyWindowHasNaNPercentiles) {
  WindowedHistogram W(smallBounds());
  WindowedHistogram::Snapshot S = W.snapshotAt(100.0);
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.Sum, 0.0);
  EXPECT_EQ(S.RatePerSec, 0.0);
  EXPECT_TRUE(std::isnan(S.Min));
  EXPECT_TRUE(std::isnan(S.Max));
  EXPECT_TRUE(std::isnan(S.P50));
  EXPECT_TRUE(std::isnan(S.P90));
  EXPECT_TRUE(std::isnan(S.P99));
  // Buckets are still shaped (bounds + overflow), just empty.
  ASSERT_EQ(S.Buckets.size(), smallBounds().size() + 1);
  for (const WindowedHistogram::Bucket &B : S.Buckets)
    EXPECT_EQ(B.Count, 0u);
  EXPECT_TRUE(std::isinf(S.Buckets.back().UpperBound));
}

TEST(Windowed, AggregatesLiveSlices) {
  WindowedHistogram W(smallBounds(), 3, 10.0);
  W.observeAt(5.0, 1.0);
  W.observeAt(12.0, 3.0);
  W.observeAt(25.0, 7.0);
  WindowedHistogram::Snapshot S = W.snapshotAt(29.0);
  EXPECT_EQ(S.Count, 3u);
  EXPECT_DOUBLE_EQ(S.Sum, 11.0);
  EXPECT_DOUBLE_EQ(S.Min, 1.0);
  EXPECT_DOUBLE_EQ(S.Max, 7.0);
  EXPECT_DOUBLE_EQ(S.RatePerSec, 3.0 / 30.0);
}

// The acceptance-criteria pin: an observation leaves the window once its
// slice rotates out, and the percentiles reflect only what remains.
TEST(Windowed, P99DecaysAsSlicesExpire) {
  WindowedHistogram W(smallBounds(), /*Slices=*/3, /*SliceSeconds=*/10.0);
  W.observeAt(5.0, 8.0);  // Slice epoch 0 — the slow outlier.
  W.observeAt(12.0, 1.0); // Slice epoch 1 — fast traffic.

  // Both slices live: the outlier dominates the tail.
  WindowedHistogram::Snapshot Both = W.snapshotAt(20.0);
  EXPECT_EQ(Both.Count, 2u);
  EXPECT_GT(Both.P99, 4.0);

  // At t=36 the window is epochs {1,2,3}: epoch 0 (the outlier) is gone,
  // epoch 1 remains. The p99 collapses to the fast request.
  WindowedHistogram::Snapshot Later = W.snapshotAt(36.0);
  EXPECT_EQ(Later.Count, 1u);
  EXPECT_DOUBLE_EQ(Later.Max, 1.0);
  EXPECT_LE(Later.P99, 1.0);

  // At t=70 everything has rotated out: empty window, NaN percentiles.
  WindowedHistogram::Snapshot Gone = W.snapshotAt(70.0);
  EXPECT_EQ(Gone.Count, 0u);
  EXPECT_TRUE(std::isnan(Gone.P99));
}

TEST(Windowed, SliceSlotRecyclingClearsStaleCounts) {
  WindowedHistogram W(smallBounds(), /*Slices=*/2, /*SliceSeconds=*/1.0);
  W.observeAt(0.5, 1.0); // Epoch 0, ring slot 0.
  W.observeAt(2.5, 3.0); // Epoch 2, same ring slot — must recycle it.
  WindowedHistogram::Snapshot S = W.snapshotAt(2.9);
  EXPECT_EQ(S.Count, 1u);
  EXPECT_DOUBLE_EQ(S.Sum, 3.0);
}

TEST(Windowed, BackwardClockJumpIsClamped) {
  WindowedHistogram W(smallBounds(), 3, 10.0);
  W.observeAt(25.0, 2.0);
  // A timestamp earlier than the last seen one must not resurrect or
  // wrongly expire slices — it is treated as "now" = 25.0 again.
  W.observeAt(3.0, 4.0);
  WindowedHistogram::Snapshot S = W.snapshotAt(26.0);
  EXPECT_EQ(S.Count, 2u);
  EXPECT_DOUBLE_EQ(S.Sum, 6.0);
  // And a backward snapshot time is clamped too (nothing expires).
  WindowedHistogram::Snapshot Again = W.snapshotAt(1.0);
  EXPECT_EQ(Again.Count, 2u);
}

TEST(Windowed, ForwardJumpBiggerThanWindowExpiresEverything) {
  WindowedHistogram W(smallBounds(), 3, 10.0);
  W.observeAt(5.0, 1.0);
  WindowedHistogram::Snapshot S = W.snapshotAt(1000.0);
  EXPECT_EQ(S.Count, 0u);
}

TEST(Windowed, PercentileMatchesCumulativeHistogramEstimator) {
  // Same observations into a cumulative Histogram and a window wide
  // enough to hold them all: the estimators must agree.
  Histogram H(smallBounds());
  WindowedHistogram W(smallBounds(), 1, 1000.0);
  for (double X : {0.5, 1.5, 1.7, 3.0, 3.5, 6.0, 7.5, 9.0}) {
    H.observe(X);
    W.observeAt(10.0, X);
  }
  WindowedHistogram::Snapshot S = W.snapshotAt(10.0);
  EXPECT_DOUBLE_EQ(S.P50, H.percentile(0.50));
  EXPECT_DOUBLE_EQ(S.P90, H.percentile(0.90));
  EXPECT_DOUBLE_EQ(S.P99, H.percentile(0.99));
}

TEST(Windowed, ResetClearsEverything) {
  WindowedHistogram W(smallBounds(), 3, 10.0);
  W.observeAt(5.0, 2.0);
  W.resetValue();
  EXPECT_EQ(W.snapshotAt(6.0).Count, 0u);
  // After reset the clock clamp restarts: earlier timestamps are fine.
  W.observeAt(1.0, 3.0);
  EXPECT_EQ(W.snapshotAt(1.5).Count, 1u);
}

//===----------------------------------------------------------------------===//
// Registry integration
//===----------------------------------------------------------------------===//

TEST(Windowed, RegistryFindOrCreateIsStableAndFirstParamsWin) {
  MetricsRegistry Reg;
  WindowedHistogram &A = Reg.windowed("serve.request.seconds",
                                      smallBounds(), 3, 10.0);
  WindowedHistogram &B = Reg.windowed("serve.request.seconds",
                                      linearBounds(1, 99), 9, 1.0);
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(A.numSlices(), 3u); // Later registration params ignored.
  EXPECT_EQ(Reg.numWindowed(), 1u);
}

TEST(Windowed, RegistryJsonHasWindowedSectionAndNullsWhenEmpty) {
  MetricsRegistry Reg;
  WindowedHistogram &W = Reg.windowed("w.lat", smallBounds(), 3, 10.0);
  // Real clock here: writeJson snapshots with the real clock too, and an
  // immediately preceding observation is well inside the window.
  W.observe(2.0);

  std::ostringstream OS;
  Reg.writeJson(OS);
  std::optional<json::Value> Doc = json::parse(OS.str());
  ASSERT_TRUE(Doc);
  const json::Value *Win = Doc->find("windowed");
  ASSERT_TRUE(Win && Win->isObject());
  const json::Value *Lat = Win->find("w.lat");
  ASSERT_TRUE(Lat && Lat->isObject());
  EXPECT_EQ(Lat->find("window_seconds")->number(), 30.0);
  EXPECT_EQ(Lat->find("count")->number(), 1.0);
  ASSERT_TRUE(Lat->find("buckets")->isArray());

  // reset() empties the window; percentiles serialize as null, not 0.
  Reg.reset();
  std::ostringstream OS2;
  Reg.writeJson(OS2);
  std::optional<json::Value> Doc2 = json::parse(OS2.str());
  ASSERT_TRUE(Doc2);
  const json::Value *Lat2 = Doc2->find("windowed")->find("w.lat");
  ASSERT_TRUE(Lat2);
  EXPECT_TRUE(Lat2->find("p99")->isNull());
  EXPECT_TRUE(Lat2->find("min")->isNull());
  EXPECT_EQ(Lat2->find("count")->number(), 0.0);
}
