#!/bin/sh
# Regression for the connection-thread leak: the old AF_UNIX accept loop
# spawned one std::thread per accepted connection and only joined them at
# shutdown, so a long-lived server accumulated one handle (and stack)
# per completed connection. The multiplexer handles every connection on
# one event loop, so the server's thread count must stay flat no matter
# how many sequential connections come and go.
#
# Run as: serve_threads_test.sh <path-to-pigeon-binary>
set -u

PIGEON="$1"
TMP=$(mktemp -d)
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -TERM "$SERVE_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

PY=$(command -v python3 || true)
if [ -z "$PY" ]; then
  echo "SKIP: python3 not available for socket clients" >&2
  exit 0
fi

"$PIGEON" synth --lang js --out "$TMP/corpus" --projects 3 --seed 7 \
  > /dev/null 2>&1 || fail "synth failed"
"$PIGEON" train --lang js --task vars --out "$TMP/model.bin" "$TMP/corpus" \
  > /dev/null 2>&1 || fail "train failed"

SOCK="$TMP/serve.sock"
"$PIGEON" serve --model "$TMP/model.bin" --socket "$SOCK" \
  2> "$TMP/serve.err" &
SERVE_PID=$!

i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && fail "socket never appeared: $(cat "$TMP/serve.err")"
  sleep 0.1
done

# One round-trip connection; returns 0 on a complete response frame.
connect_once() {
  "$PY" - "$SOCK" <<'PYEOF'
import json, socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
s.sendall((json.dumps({"id": 1, "lang": "js",
                       "source": "function f(x) { var y = x; return y; }"})
           + "\n").encode())
buf = b""
while b"\n" not in buf:
    d = s.recv(65536)
    if not d:
        break
    buf += d
s.close()
doc = json.loads(buf.decode())
sys.exit(0 if doc.get("ok") else 1)
PYEOF
}

threads_now() {
  awk '/^Threads:/ { print $2 }' "/proc/$SERVE_PID/status"
}

# Warm up with a few connections so every lazily-created thread (batcher
# workers, telemetry) exists before the baseline is taken.
n=0
while [ "$n" -lt 3 ]; do
  connect_once || fail "warmup connection $n failed"
  n=$((n + 1))
done
BASELINE=$(threads_now)
[ -n "$BASELINE" ] || fail "cannot read Threads from /proc/$SERVE_PID/status"

# Many sequential connections. With thread-per-connection this grew the
# count by ~one thread per connection (joined only at shutdown).
n=0
while [ "$n" -lt 25 ]; do
  connect_once || fail "connection $n failed"
  n=$((n + 1))
done
AFTER=$(threads_now)

# Flat means flat: allow a tiny slack for transient runtime threads, but
# nothing close to one-per-connection growth.
GROWTH=$((AFTER - BASELINE))
[ "$GROWTH" -le 2 ] \
  || fail "thread count grew by $GROWTH across 25 connections ($BASELINE -> $AFTER)"

kill -TERM "$SERVE_PID" || fail "server died early"
wait "$SERVE_PID"
RC=$?
SERVE_PID=""
[ "$RC" = 0 ] || fail "server exited nonzero on SIGTERM: $RC"

echo "PASS: threads stayed bounded ($BASELINE -> $AFTER across 25 connections)"
