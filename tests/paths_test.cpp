//===- paths_test.cpp - Unit tests for AST path extraction -----------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "paths/Paths.h"

#include "lang/js/JsParser.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::paths;

namespace {

/// Fig. 1a of the paper, parsed by the MiniJS frontend.
struct Fig1 {
  StringInterner SI;
  std::optional<Tree> T;
  NodeId FirstD = InvalidNode, SecondD = InvalidNode, TrueLeaf = InvalidNode;

  Fig1() {
    lang::ParseResult R = js::parse(
        "while (!d) { if (someCondition()) { d = true; } }", SI);
    EXPECT_TRUE(R.ok());
    T = std::move(R.Tree);
    for (NodeId Leaf : T->terminals()) {
      std::string_view V = SI.str(T->node(Leaf).Value);
      if (V == "d") {
        if (FirstD == InvalidNode)
          FirstD = Leaf;
        else
          SecondD = Leaf;
      }
      if (V == "true")
        TrueLeaf = Leaf;
    }
  }
};

//===----------------------------------------------------------------------===//
// pathShape
//===----------------------------------------------------------------------===//

TEST(PathShape, Fig1PathBetweenTheTwoDs) {
  Fig1 F;
  PathShape S = pathShape(*F.T, F.FirstD, F.SecondD);
  EXPECT_EQ(F.SI.str(F.T->node(S.Pivot).Kind), "While");
  // d ^UnaryPrefix! ^While _Block _If _Block _SimpleStatement _Assign= _d:
  // our UglifyJS-style tree includes Block/SimpleStatement wrappers, so
  // the length is larger than the paper's pruned rendering but the pivot
  // and width match.
  EXPECT_GT(S.Length, 2);
  EXPECT_EQ(S.Width, 1) << "cond is child 0, body child 1 of While";
}

TEST(PathShape, Fig5WidthExample) {
  // Fig. 5: `var a, b, c, d;` — width between a and d is 3.
  StringInterner SI;
  lang::ParseResult R = js::parse("var a, b, c, d;", SI);
  ASSERT_TRUE(R.ok());
  const Tree &T = *R.Tree;
  NodeId A = T.terminals().front();
  NodeId D = T.terminals().back();
  PathShape S = pathShape(T, A, D);
  EXPECT_EQ(S.Width, 3);
  // a ^VarDef ^Var _VarDef _d = 4 edges, matching the figure.
  EXPECT_EQ(S.Length, 4);
  EXPECT_EQ(SI.str(T.node(S.Pivot).Kind), "Var");
}

TEST(PathShape, SemiPathHasWidthZero) {
  Fig1 F;
  NodeId Root = F.T->root();
  PathShape S = pathShape(*F.T, F.FirstD, Root);
  EXPECT_EQ(S.Width, 0);
  EXPECT_EQ(S.Pivot, Root);
  EXPECT_EQ(S.Length, static_cast<int>(F.T->node(F.FirstD).Depth));
}

TEST(PathShape, AdjacentSiblingsWidthOne) {
  StringInterner SI;
  lang::ParseResult R = js::parse("var a, b;", SI);
  ASSERT_TRUE(R.ok());
  const Tree &T = *R.Tree;
  PathShape S = pathShape(T, T.terminals()[0], T.terminals()[1]);
  EXPECT_EQ(S.Width, 1);
}

//===----------------------------------------------------------------------===//
// pathString and abstractions
//===----------------------------------------------------------------------===//

TEST(PathString, Fig2ShortPath) {
  // Fig. 2's p4: SymbolRef ↑ Assign= ↓ True between `d` and `true`.
  Fig1 F;
  EXPECT_EQ(pathString(*F.T, F.SecondD, F.TrueLeaf, Abstraction::Full),
            "SymbolRef^Assign=_True");
}

TEST(PathString, FullContainsArrowsAndAllNodes) {
  Fig1 F;
  std::string P = pathString(*F.T, F.FirstD, F.SecondD, Abstraction::Full);
  EXPECT_EQ(P.substr(0, 10), "SymbolRef^");
  EXPECT_NE(P.find("While"), std::string::npos);
  EXPECT_NE(P.find("_SymbolRef"), std::string::npos);
}

TEST(PathString, NoArrowsDropsOnlyArrows) {
  Fig1 F;
  std::string Full =
      pathString(*F.T, F.SecondD, F.TrueLeaf, Abstraction::Full);
  std::string NoAr =
      pathString(*F.T, F.SecondD, F.TrueLeaf, Abstraction::NoArrows);
  EXPECT_EQ(NoAr, "SymbolRef Assign= True");
  EXPECT_NE(Full, NoAr);
}

TEST(PathString, ForgetOrderSortsNodes) {
  Fig1 F;
  EXPECT_EQ(pathString(*F.T, F.SecondD, F.TrueLeaf, Abstraction::ForgetOrder),
            "Assign= SymbolRef True");
}

TEST(PathString, ForgetOrderEquatesMirroredPaths) {
  // a→b and b→a visit the same bag of nodes.
  StringInterner SI;
  lang::ParseResult R = js::parse("x = 1;", SI);
  ASSERT_TRUE(R.ok());
  const Tree &T = *R.Tree;
  NodeId A = T.terminals()[0], B = T.terminals()[1];
  EXPECT_EQ(pathString(T, A, B, Abstraction::ForgetOrder),
            pathString(T, B, A, Abstraction::ForgetOrder));
  EXPECT_NE(pathString(T, A, B, Abstraction::Full),
            pathString(T, B, A, Abstraction::Full));
}

TEST(PathString, FirstTopLast) {
  Fig1 F;
  std::string P =
      pathString(*F.T, F.FirstD, F.SecondD, Abstraction::FirstTopLast);
  EXPECT_EQ(P, "SymbolRef^While_SymbolRef");
}

TEST(PathString, FirstLast) {
  Fig1 F;
  EXPECT_EQ(pathString(*F.T, F.FirstD, F.SecondD, Abstraction::FirstLast),
            "SymbolRef..SymbolRef");
}

TEST(PathString, TopKeepsOnlyPivot) {
  Fig1 F;
  EXPECT_EQ(pathString(*F.T, F.FirstD, F.SecondD, Abstraction::Top),
            "While");
}

TEST(PathString, NoPathCollapsesEverything) {
  Fig1 F;
  EXPECT_EQ(pathString(*F.T, F.FirstD, F.SecondD, Abstraction::NoPath),
            "rel");
  EXPECT_EQ(pathString(*F.T, F.SecondD, F.TrueLeaf, Abstraction::NoPath),
            "rel");
}

TEST(PathString, SemiPathRendering) {
  Fig1 F;
  NodeId Parent = F.T->node(F.FirstD).Parent; // UnaryPrefix!
  EXPECT_EQ(pathString(*F.T, F.FirstD, Parent, Abstraction::Full),
            "SymbolRef^UnaryPrefix!");
  EXPECT_EQ(pathString(*F.T, F.FirstD, Parent, Abstraction::FirstTopLast),
            "SymbolRef^UnaryPrefix!_UnaryPrefix!");
}

TEST(PathString, AbstractionLadderShrinksDistinctPaths) {
  // Over a nontrivial program, coarser abstractions must produce no more
  // distinct paths than finer ones (the §5.6 model-size argument).
  StringInterner SI;
  lang::ParseResult R = js::parse(
      "function f(a, b) { var t = 0; for (var i = 0; i < a; i++) { t += "
      "b[i]; } return t; }",
      SI);
  ASSERT_TRUE(R.ok());
  const Tree &T = *R.Tree;
  size_t PrevCount = SIZE_MAX;
  for (Abstraction A :
       {Abstraction::Full, Abstraction::NoArrows, Abstraction::ForgetOrder,
        Abstraction::FirstTopLast, Abstraction::FirstLast, Abstraction::Top,
        Abstraction::NoPath}) {
    std::set<std::string> Distinct;
    auto Leaves = T.terminals();
    for (size_t I = 0; I < Leaves.size(); ++I)
      for (size_t J = I + 1; J < Leaves.size(); ++J)
        Distinct.insert(pathString(T, Leaves[I], Leaves[J], A));
    EXPECT_LE(Distinct.size(), PrevCount)
        << "abstraction " << abstractionName(A)
        << " must not increase path vocabulary";
    PrevCount = Distinct.size();
  }
}

//===----------------------------------------------------------------------===//
// extractPathContexts
//===----------------------------------------------------------------------===//

TEST(Extract, RespectsMaxLength) {
  Fig1 F;
  PathTable Table;
  ExtractionConfig Short;
  Short.MaxLength = 2;
  Short.MaxWidth = 10;
  Short.IncludeSemiPaths = false;
  auto Contexts = extractPathContexts(*F.T, Short, Table);
  for (const PathContext &C : Contexts) {
    PathShape S = pathShape(*F.T, C.Start, C.End);
    EXPECT_LE(S.Length, 2);
  }
}

TEST(Extract, RespectsMaxWidth) {
  StringInterner SI;
  lang::ParseResult R = js::parse("var a, b, c, d;", SI);
  ASSERT_TRUE(R.ok());
  PathTable Table;
  ExtractionConfig Config;
  Config.MaxLength = 10;
  Config.MaxWidth = 1;
  Config.IncludeSemiPaths = false;
  auto Contexts = extractPathContexts(*R.Tree, Config, Table);
  // Only adjacent declarators may pair: (a,b), (b,c), (c,d).
  EXPECT_EQ(Contexts.size(), 3u);
}

TEST(Extract, LargerLimitsExtractMorePaths) {
  Fig1 F;
  PathTable Table;
  ExtractionConfig Small{/*MaxLength=*/3, /*MaxWidth=*/1,
                         Abstraction::Full, /*IncludeSemiPaths=*/false};
  ExtractionConfig Big{/*MaxLength=*/12, /*MaxWidth=*/6, Abstraction::Full,
                       /*IncludeSemiPaths=*/false};
  EXPECT_LT(extractPathContexts(*F.T, Small, Table).size(),
            extractPathContexts(*F.T, Big, Table).size());
}

TEST(Extract, SemiPathsAreMarked) {
  Fig1 F;
  PathTable Table;
  ExtractionConfig Config;
  auto Contexts = extractPathContexts(*F.T, Config, Table);
  bool SawSemi = false, SawLeafwise = false;
  for (const PathContext &C : Contexts) {
    if (C.Semi) {
      SawSemi = true;
      EXPECT_FALSE(F.T->node(C.End).isTerminal());
    } else {
      SawLeafwise = true;
      EXPECT_TRUE(F.T->node(C.End).isTerminal());
    }
  }
  EXPECT_TRUE(SawSemi);
  EXPECT_TRUE(SawLeafwise);
}

TEST(Extract, StartPrecedesEndInSourceOrder) {
  Fig1 F;
  PathTable Table;
  ExtractionConfig Config;
  Config.IncludeSemiPaths = false;
  for (const PathContext &C : extractPathContexts(*F.T, Config, Table))
    EXPECT_LT(C.Start, C.End);
}

TEST(Extract, PathsInternAcrossTrees) {
  // The same syntactic pattern in two different programs must intern to
  // the same PathId — this is what makes cross-program learning work.
  StringInterner SI;
  PathTable Table;
  ExtractionConfig Config;
  Config.IncludeSemiPaths = false;
  lang::ParseResult R1 = js::parse("x = true;", SI);
  lang::ParseResult R2 = js::parse("done = true;", SI);
  ASSERT_TRUE(R1.ok() && R2.ok());
  auto C1 = extractPathContexts(*R1.Tree, Config, Table);
  auto C2 = extractPathContexts(*R2.Tree, Config, Table);
  ASSERT_FALSE(C1.empty());
  ASSERT_FALSE(C2.empty());
  EXPECT_EQ(C1[0].Path, C2[0].Path);
}

TEST(Extract, EndValueOfTerminalAndNonterminal) {
  Fig1 F;
  EXPECT_EQ(F.SI.str(endValue(*F.T, F.FirstD)), "d");
  EXPECT_EQ(F.SI.str(endValue(*F.T, F.T->root())), "Toplevel");
}

//===----------------------------------------------------------------------===//
// extractPathsToNode (type-task paths)
//===----------------------------------------------------------------------===//

TEST(ExtractToNode, FindsPathsToExpressionNode) {
  Fig1 F;
  // Target: the Assign= node (parent of SecondD).
  NodeId Assign = F.T->node(F.SecondD).Parent;
  PathTable Table;
  ExtractionConfig Config;
  Config.MaxLength = 4;
  Config.MaxWidth = 2;
  auto Contexts = extractPathsToNode(*F.T, Assign, Config, Table);
  ASSERT_FALSE(Contexts.empty());
  bool SawInnerLeaf = false;
  for (const PathContext &C : Contexts) {
    EXPECT_EQ(C.End, Assign);
    if (C.Start == F.SecondD) {
      SawInnerLeaf = true;
      EXPECT_TRUE(C.Semi) << "leaf inside the target is a chain";
      EXPECT_EQ(Table.render(C.Path, F.SI), "SymbolRef^Assign=");
    }
  }
  EXPECT_TRUE(SawInnerLeaf);
}

TEST(ExtractToNode, RespectsLimits) {
  Fig1 F;
  NodeId Assign = F.T->node(F.SecondD).Parent;
  PathTable Table;
  ExtractionConfig Tight;
  Tight.MaxLength = 1;
  Tight.MaxWidth = 1;
  auto Contexts = extractPathsToNode(*F.T, Assign, Tight, Table);
  for (const PathContext &C : Contexts) {
    PathShape S = pathShape(*F.T, C.Start, C.End);
    EXPECT_LE(S.Length, 1);
    EXPECT_LE(S.Width, 1);
  }
}

//===----------------------------------------------------------------------===//
// PathTable
//===----------------------------------------------------------------------===//

TEST(PathTableTest, InternRoundTrips) {
  StringInterner SI;
  PathTable Table;
  PathId A = Table.internString("X^Y_Z");
  PathId B = Table.internString("X^Y_Z");
  PathId C = Table.internString("other");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(Table.render(A, SI), "X^Y_Z");
  EXPECT_EQ(Table.size(), 2u);
}

TEST(PathTableTest, IdsAreDenseFromOneAndIdZeroUnused) {
  PathTable Table;
  EXPECT_EQ(Table.size(), 0u);
  PathId First = Table.internString("alpha");
  PathId Second = Table.internString("beta");
  PathId Third = Table.internString("gamma");
  EXPECT_EQ(First, 1u);
  EXPECT_EQ(Second, 2u);
  EXPECT_EQ(Third, 3u);
  EXPECT_EQ(Table.size(), 3u);
  // Re-interning never perturbs ids or the size.
  EXPECT_EQ(Table.internString("beta"), Second);
  EXPECT_EQ(Table.size(), 3u);
  // Every id holds at least the tag byte.
  for (PathId Id = 1; Id <= Table.size(); ++Id)
    EXPECT_FALSE(Table.bytes(Id).empty());
}

TEST(PathTableTest, InternSurvivesArenaGrowth) {
  // Push enough distinct paths through that the byte arena must grow
  // several blocks; earlier spans must stay valid and deduplication must
  // keep working across block boundaries.
  StringInterner SI;
  PathTable Table;
  std::vector<PathId> Ids;
  for (int I = 0; I < 5000; ++I)
    Ids.push_back(Table.internString("path-" + std::to_string(I) +
                                     std::string(64, 'x')));
  EXPECT_EQ(Table.size(), 5000u);
  for (int I = 0; I < 5000; ++I) {
    EXPECT_EQ(Table.internString("path-" + std::to_string(I) +
                                 std::string(64, 'x')),
              Ids[I]);
    EXPECT_EQ(Table.render(Ids[I], SI),
              "path-" + std::to_string(I) + std::string(64, 'x'));
  }
}

TEST(PathTableTest, AbsorbMergesByteWiseWithCorrectRemap) {
  StringInterner SI;
  PathTable Base;
  Base.internString("shared");
  Base.internString("only-base");

  PathTable Shard;
  Shard.internString("only-shard"); // Shard id 1 → new id 3.
  Shard.internString("shared");     // Shard id 2 → existing id 1.

  std::vector<PathId> Remap = Base.absorb(Shard);
  ASSERT_EQ(Remap.size(), 3u); // Index 0 unused.
  EXPECT_EQ(Remap[1], 3u);
  EXPECT_EQ(Remap[2], 1u);
  EXPECT_EQ(Base.size(), 3u);
  EXPECT_EQ(Base.render(3, SI), "only-shard");
  // Absorbing the same shard again adds nothing.
  std::vector<PathId> Again = Base.absorb(Shard);
  EXPECT_EQ(Again[1], 3u);
  EXPECT_EQ(Again[2], 1u);
  EXPECT_EQ(Base.size(), 3u);
}

//===----------------------------------------------------------------------===//
// Packed encoding: byte equality must coincide with rendered-string
// equality (the dedup classes the learners see), for every abstraction.
//===----------------------------------------------------------------------===//

const Abstraction AllAbstractions[] = {
    Abstraction::Full,         Abstraction::NoArrows,
    Abstraction::ForgetOrder,  Abstraction::FirstTopLast,
    Abstraction::FirstLast,    Abstraction::Top,
    Abstraction::NoPath,
};

TEST(PackedPaths, DedupClassesMatchRenderedStrings) {
  StringInterner SI;
  lang::ParseResult R = js::parse(
      "function f(a, b) { var sum = a + b; var diff = a - b; "
      "while (sum > diff) { sum = sum - 1; } return sum * diff; }",
      SI);
  ASSERT_TRUE(R.ok());
  for (Abstraction Abst : AllAbstractions) {
    PathTable Table;
    ExtractionConfig Config;
    Config.MaxLength = 8;
    Config.MaxWidth = 4;
    Config.Abst = Abst;
    auto Contexts = extractPathContexts(*R.Tree, Config, Table);
    ASSERT_FALSE(Contexts.empty()) << abstractionName(Abst);
    // Same rendered string ⟺ same PathId: no over- or under-merging.
    std::map<std::string, PathId> ByString;
    for (PathId Id = 1; Id <= Table.size(); ++Id) {
      auto [It, Inserted] =
          ByString.emplace(Table.render(Id, SI), Id);
      EXPECT_TRUE(Inserted)
          << abstractionName(Abst) << ": ids " << It->second << " and "
          << Id << " both render \"" << It->first << "\"";
    }
    EXPECT_EQ(ByString.size(), Table.size());
  }
}

TEST(PackedPaths, PackMatchesPathStringForLeafPairs) {
  Fig1 F;
  auto Leaves = F.T->terminals();
  PathScratch Scratch;
  for (Abstraction Abst : AllAbstractions) {
    for (size_t I = 0; I + 1 < Leaves.size(); ++I) {
      packPath(*F.T, Leaves[I], Leaves[I + 1], Abst, Scratch);
      EXPECT_EQ(renderPackedPath(Scratch.Bytes, F.SI),
                pathString(*F.T, Leaves[I], Leaves[I + 1], Abst))
          << abstractionName(Abst) << " pair " << I;
    }
  }
}

TEST(PackedPaths, Fig5FullPathRendersExactly) {
  StringInterner SI;
  lang::ParseResult R = js::parse("var a, b, c, d;", SI);
  ASSERT_TRUE(R.ok());
  const Tree &T = *R.Tree;
  NodeId A = T.terminals().front();
  NodeId D = T.terminals().back();
  PathScratch Scratch;
  packPath(T, A, D, Abstraction::Full, Scratch);
  ASSERT_FALSE(Scratch.Bytes.empty());
  EXPECT_EQ(static_cast<PathTag>(Scratch.Bytes[0]), PathTag::PairFull);
  EXPECT_EQ(renderPackedPath(Scratch.Bytes, SI),
            "SymbolVar^VarDef^Var_VarDef_SymbolVar");

  packPath(T, A, D, Abstraction::FirstLast, Scratch);
  EXPECT_EQ(static_cast<PathTag>(Scratch.Bytes[0]), PathTag::FirstLast);
  EXPECT_EQ(renderPackedPath(Scratch.Bytes, SI), "SymbolVar..SymbolVar");

  packPath(T, A, D, Abstraction::Top, Scratch);
  EXPECT_EQ(static_cast<PathTag>(Scratch.Bytes[0]), PathTag::Top);
  EXPECT_EQ(renderPackedPath(Scratch.Bytes, SI), "Var");

  packPath(T, A, D, Abstraction::NoPath, Scratch);
  EXPECT_EQ(static_cast<PathTag>(Scratch.Bytes[0]), PathTag::Raw);
  EXPECT_EQ(renderPackedPath(Scratch.Bytes, SI), "rel");
}

TEST(PackedPaths, MalformedBytesRenderAsBadPath) {
  StringInterner SI;
  std::vector<uint8_t> Truncated = {
      static_cast<uint8_t>(PathTag::PairFull), 0x80}; // Cut varint.
  EXPECT_EQ(renderPackedPath(Truncated, SI), "<bad-path>");
  std::vector<uint8_t> BogusSymbol = {
      static_cast<uint8_t>(PathTag::Top), 0x7F}; // Index 127: not interned.
  EXPECT_EQ(renderPackedPath(BogusSymbol, SI), "<bad-path>");
  std::vector<uint8_t> Empty;
  EXPECT_EQ(renderPackedPath(Empty, SI), "<bad-path>");
}

TEST(PackedPaths, RemapCrossesInternerSpaces) {
  // The same source parsed against two interners whose symbol ids differ;
  // remapping packed bytes from one space to the other must preserve the
  // rendered path.
  const char *Source = "while (!d) { if (c()) { d = true; } }";
  StringInterner SA, SB;
  SB.intern("zzz-shift-the-ids");
  SB.intern("zzz-shift-more");
  lang::ParseResult RA = js::parse(Source, SA);
  lang::ParseResult RB = js::parse(Source, SB);
  ASSERT_TRUE(RA.ok() && RB.ok());

  // Map: SA index → symbol in SB.
  std::vector<Symbol> Map(SA.size());
  for (uint32_t I = 1; I < SA.size(); ++I)
    Map[I] = SB.intern(SA.str(Symbol::fromIndex(I)));

  auto Leaves = RA.Tree->terminals();
  PathScratch Scratch;
  std::vector<uint8_t> Out;
  size_t Checked = 0;
  for (Abstraction Abst : AllAbstractions) {
    for (size_t I = 0; I + 1 < Leaves.size(); ++I) {
      packPath(*RA.Tree, Leaves[I], Leaves[I + 1], Abst, Scratch);
      ASSERT_TRUE(remapPackedPath(Scratch.Bytes, Map, Out))
          << abstractionName(Abst);
      EXPECT_EQ(renderPackedPath(Out, SB),
                renderPackedPath(Scratch.Bytes, SA))
          << abstractionName(Abst);
      ++Checked;
    }
  }
  EXPECT_GT(Checked, 0u);
}

TEST(PackedPaths, RemapRejectsOutOfRangeSymbols) {
  StringInterner SI;
  SI.intern("only");
  std::vector<uint8_t> Packed = {static_cast<uint8_t>(PathTag::Top),
                                 0x09}; // Index 9 beyond the map.
  std::vector<Symbol> Map(SI.size());
  Map[1] = Symbol::fromIndex(1);
  std::vector<uint8_t> Out;
  EXPECT_FALSE(remapPackedPath(Packed, Map, Out));
  std::vector<uint8_t> Truncated = {static_cast<uint8_t>(PathTag::PairFull),
                                    0x80};
  EXPECT_FALSE(remapPackedPath(Truncated, Map, Out));
}

//===----------------------------------------------------------------------===//
// Discriminative power (Fig. 3): the paper's motivating pair
//===----------------------------------------------------------------------===//

TEST(Discrimination, Fig3PairDistinguishableByPathsOnly) {
  // Fig. 3a (loop) and Fig. 3b (straight-line) are indistinguishable for
  // single-statement relation models, but their AST path multisets differ.
  StringInterner SI;
  lang::ParseResult A = js::parse("var d = false; while (!d) { "
                                  "doSomething(); if (someCondition()) { d "
                                  "= true; } }",
                                  SI);
  lang::ParseResult B = js::parse("someCondition(); doSomething(); var d = "
                                  "false; d = true;",
                                  SI);
  ASSERT_TRUE(A.ok() && B.ok());
  PathTable Table;
  ExtractionConfig Config;
  Config.MaxLength = 7;
  Config.MaxWidth = 3;
  auto PathsOfD = [&](const Tree &T) {
    std::multiset<std::string> Set;
    for (const PathContext &C : extractPathContexts(T, Config, Table)) {
      std::string_view SV = SI.str(T.node(C.Start).Value);
      std::string_view EV = T.node(C.End).isTerminal()
                                ? SI.str(T.node(C.End).Value)
                                : std::string_view();
      if (SV == "d" || EV == "d")
        Set.insert(Table.render(C.Path, SI));
    }
    return Set;
  };
  EXPECT_NE(PathsOfD(*A.Tree), PathsOfD(*B.Tree))
      << "AST paths must distinguish Fig. 3a from Fig. 3b";
}

} // namespace
