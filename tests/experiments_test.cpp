//===- experiments_test.cpp - Integration tests for the pipeline -----------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end tests: generate a corpus, parse it, train models, and check
/// that the paper's qualitative orderings hold (AST paths beat the
/// baselines; the type task beats the String baseline; etc.).
///
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include "lang/js/JsParser.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace pigeon;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

/// Small-but-meaningful corpus, cached per language across tests.
const Corpus &corpusFor(Language Lang) {
  static std::map<Language, Corpus> Cache;
  auto It = Cache.find(Lang);
  if (It == Cache.end()) {
    datagen::CorpusSpec Spec = datagen::defaultSpec(Lang, /*Seed=*/11);
    Spec.NumProjects = 40;
    It = Cache.emplace(Lang,
                       parseCorpus(datagen::generateCorpus(Spec), Lang))
             .first;
  }
  return It->second;
}

CrfExperimentOptions defaultOptions() {
  CrfExperimentOptions Options;
  Options.Extraction.MaxLength = 4;
  Options.Extraction.MaxWidth = 3;
  Options.Crf.Epochs = 4;
  return Options;
}

TEST(PipelineTest, ParsesWholeCorpus) {
  const Corpus &C = corpusFor(Language::JavaScript);
  EXPECT_EQ(C.ParseFailures, 0u);
  EXPECT_EQ(C.Files.size(), 640u);
  EXPECT_EQ(C.numProjects(), 40u);
  EXPECT_GT(C.SourceBytes, 10000u);
}

TEST(PipelineTest, SplitSeparatesProjects) {
  const Corpus &C = corpusFor(Language::JavaScript);
  Split S = splitByProject(C, 0.25, 42);
  EXPECT_FALSE(S.Train.empty());
  EXPECT_FALSE(S.Test.empty());
  EXPECT_EQ(S.Train.size() + S.Test.size(), C.Files.size());
  std::set<std::string> TrainProjects, TestProjects;
  for (size_t I : S.Train)
    TrainProjects.insert(C.Files[I].Project);
  for (size_t I : S.Test)
    TestProjects.insert(C.Files[I].Project);
  for (const std::string &P : TestProjects)
    EXPECT_FALSE(TrainProjects.count(P)) << "project leaked: " << P;
}

TEST(PipelineTest, SplitIsDeterministic) {
  const Corpus &C = corpusFor(Language::JavaScript);
  Split A = splitByProject(C, 0.25, 42);
  Split B = splitByProject(C, 0.25, 42);
  EXPECT_EQ(A.Train, B.Train);
  EXPECT_EQ(A.Test, B.Test);
  Split Other = splitByProject(C, 0.25, 43);
  EXPECT_NE(A.Test, Other.Test);
}

TEST(ExperimentsVarNames, AstPathsLearnSomething) {
  ExperimentResult R = runCrfNameExperiment(
      corpusFor(Language::JavaScript), Task::VariableNames,
      defaultOptions());
  EXPECT_GT(R.Predictions, 50u);
  EXPECT_GT(R.Accuracy, 0.45) << "paths should predict most modal names";
  EXPECT_GT(R.NumFeatures, 100u);
  EXPECT_GT(R.DistinctPaths, 50u);
}

TEST(ExperimentsVarNames, PathsBeatNoPaths) {
  const Corpus &C = corpusFor(Language::JavaScript);
  CrfExperimentOptions Options = defaultOptions();
  ExperimentResult Paths =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  Options.Repr = Representation::NoPaths;
  ExperimentResult NoPaths =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  EXPECT_GT(Paths.Accuracy, NoPaths.Accuracy)
      << "paths=" << Paths.Accuracy << " nopaths=" << NoPaths.Accuracy;
}

TEST(ExperimentsVarNames, PathsBeatIntraStatement) {
  const Corpus &C = corpusFor(Language::JavaScript);
  CrfExperimentOptions Options = defaultOptions();
  ExperimentResult Paths =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  Options.Repr = Representation::IntraStatement;
  ExperimentResult Intra =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  EXPECT_GT(Paths.Accuracy, Intra.Accuracy)
      << "paths=" << Paths.Accuracy << " intra=" << Intra.Accuracy;
}

TEST(ExperimentsVarNames, PathsBeatNgramsOnJava) {
  const Corpus &C = corpusFor(Language::Java);
  CrfExperimentOptions Options = defaultOptions();
  Options.Extraction = tunedExtraction(Language::Java, Task::VariableNames);
  ExperimentResult Paths =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  Options.Repr = Representation::Ngrams;
  ExperimentResult Ngrams =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  EXPECT_GT(Paths.Accuracy, Ngrams.Accuracy)
      << "paths=" << Paths.Accuracy << " ngrams=" << Ngrams.Accuracy;
}

TEST(ExperimentsVarNames, RuleBasedIsWeakOnJava) {
  const Corpus &C = corpusFor(Language::Java);
  ExperimentResult Rules = runRuleBasedJava(C, 0.25, 42);
  CrfExperimentOptions Options = defaultOptions();
  Options.Extraction = tunedExtraction(Language::Java, Task::VariableNames);
  ExperimentResult Paths =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  EXPECT_GT(Rules.Predictions, 20u);
  EXPECT_GT(Paths.Accuracy, Rules.Accuracy)
      << "paths=" << Paths.Accuracy << " rules=" << Rules.Accuracy;
}

TEST(ExperimentsVarNames, DownsamplingDegradesGracefully) {
  const Corpus &C = corpusFor(Language::JavaScript);
  CrfExperimentOptions Options = defaultOptions();
  ExperimentResult Full =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  Options.DownsampleP = 0.5;
  ExperimentResult Half =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  EXPECT_LT(Half.TrainContexts, Full.TrainContexts);
  // Half the contexts must not collapse accuracy (Fig. 11's flatness).
  EXPECT_GT(Half.Accuracy, Full.Accuracy - 0.15);
}

TEST(ExperimentsMethodNames, PathsPredictMethodNames) {
  ExperimentResult R = runCrfNameExperiment(
      corpusFor(Language::JavaScript), Task::MethodNames, defaultOptions());
  EXPECT_GT(R.Predictions, 20u);
  EXPECT_GT(R.Accuracy, 0.3);
  EXPECT_GT(R.SubtokenF1, R.Accuracy)
      << "sub-token F1 credits partial matches";
}

TEST(ExperimentsMethodNames, SubtokenBaselineRunsOnJava) {
  const Corpus &C = corpusFor(Language::Java);
  ExperimentResult Sub = runSubtokenMethodNamer(C, 0.25, 42);
  EXPECT_GT(Sub.Predictions, 20u);
  ExperimentResult Paths =
      runCrfNameExperiment(C, Task::MethodNames, defaultOptions());
  EXPECT_GT(Paths.Accuracy, Sub.Accuracy)
      << "paths=" << Paths.Accuracy << " subtoken=" << Sub.Accuracy;
}

TEST(ExperimentsTypes, TypePredictionBeatsStringBaseline) {
  const Corpus &C = corpusFor(Language::Java);
  CrfExperimentOptions Options = defaultOptions();
  Options.Extraction.MaxLength = 4;
  Options.Extraction.MaxWidth = 1;
  ExperimentResult Types = runCrfTypeExperiment(C, Options);
  ExperimentResult Naive = runStringTypeBaseline(C, 0.25, 42);
  EXPECT_GT(Types.Predictions, 100u);
  EXPECT_GT(Types.Accuracy, 0.5);
  EXPECT_GT(Types.Accuracy, Naive.Accuracy + 0.2)
      << "types=" << Types.Accuracy << " naive=" << Naive.Accuracy;
  EXPECT_GT(Naive.Accuracy, 0.05);
}

TEST(ExperimentsW2v, PathsBeatTokenStream) {
  const Corpus &C = corpusFor(Language::JavaScript);
  W2vExperimentOptions Options;
  Options.Sgns.Epochs = 4;
  ExperimentResult Paths = runW2vNameExperiment(C, Options);
  Options.Contexts = W2vContexts::TokenStream;
  ExperimentResult Tokens = runW2vNameExperiment(C, Options);
  Options.Contexts = W2vContexts::PathNeighbors;
  ExperimentResult Neighbors = runW2vNameExperiment(C, Options);
  EXPECT_GT(Paths.Accuracy, Tokens.Accuracy)
      << "paths=" << Paths.Accuracy << " tokens=" << Tokens.Accuracy;
  EXPECT_GT(Paths.Accuracy, Neighbors.Accuracy)
      << "paths=" << Paths.Accuracy << " nb=" << Neighbors.Accuracy;
}

TEST(PipelineTest, ZeroTestFractionYieldsEmptyTestSplit) {
  const Corpus &C = corpusFor(Language::JavaScript);
  for (double Fraction : {0.0, -0.5}) {
    Split S = splitByProject(C, Fraction, 42);
    EXPECT_TRUE(S.Test.empty()) << "fraction " << Fraction;
    EXPECT_EQ(S.Train.size(), C.Files.size()) << "fraction " << Fraction;
  }
}

TEST(PipelineTest, SplitEdgeCasesOfTinyCorpora) {
  // Empty corpus: both splits empty, any fraction.
  Corpus Empty;
  Empty.Interner = std::make_unique<StringInterner>();
  for (double Fraction : {0.0, 0.25, 1.0}) {
    Split S = splitByProject(Empty, Fraction, 42);
    EXPECT_TRUE(S.Train.empty());
    EXPECT_TRUE(S.Test.empty());
  }

  // splitByProject only reads ParsedFile::Project, but Tree is only
  // constructible through a frontend — parse a trivial file per entry.
  auto MakeCorpus = [](const std::vector<std::string> &Projects) {
    Corpus C;
    C.Interner = std::make_unique<StringInterner>();
    for (size_t I = 0; I < Projects.size(); ++I) {
      lang::ParseResult R =
          js::parse("function f() { var a = 1; }", *C.Interner);
      C.Files.push_back(
          {Projects[I], "f" + std::to_string(I), std::move(*R.Tree)});
    }
    return C;
  };

  // One project: a positive fraction may take it (nothing else to keep
  // for training), but zero must leave it in train.
  Corpus One = MakeCorpus({"p0", "p0"});
  Split Zero = splitByProject(One, 0.0, 42);
  EXPECT_EQ(Zero.Train.size(), 2u);
  EXPECT_TRUE(Zero.Test.empty());
  Split Quarter = splitByProject(One, 0.25, 42);
  EXPECT_EQ(Quarter.Train.size() + Quarter.Test.size(), 2u);

  // Two projects, positive fraction: at least one project in test and at
  // least one left for training.
  Corpus Two = MakeCorpus({"p0", "p1"});
  Split S = splitByProject(Two, 0.25, 42);
  EXPECT_EQ(S.Train.size(), 1u);
  EXPECT_EQ(S.Test.size(), 1u);
}

TEST(PipelineTest, MetricSafeReasonSanitizesDiagnostics) {
  EXPECT_EQ(metricSafeReason("no tree"), "no_tree");
  EXPECT_EQ(metricSafeReason("1:5: unexpected token ')'"),
            "1_5_unexpected_token");
  EXPECT_EQ(metricSafeReason("Already-Safe.reason-1"), "already-safe.reason-1");
  EXPECT_EQ(metricSafeReason("  \"quoted\"  "), "quoted");
  EXPECT_EQ(metricSafeReason(""), "unknown");
  EXPECT_EQ(metricSafeReason("!!!"), "unknown");
  // Long raw diagnostics are truncated to a bounded metric name.
  std::string Long(500, 'x');
  EXPECT_LE(metricSafeReason(Long).size(), 48u);
}

TEST(PipelineTest, ParseFailureReasonCounterBudgetIsGlobal) {
  auto &Reg = telemetry::MetricsRegistry::global();
  // Flood with distinct reasons across *several* calls: the per-process
  // budget must cap the distinct counters regardless of call boundaries.
  size_t Before = Reg.numCounters();
  for (int Call = 0; Call < 4; ++Call)
    for (int I = 0; I < 10; ++I)
      recordParseFailureReason("flooded reason #" + std::to_string(Call) +
                               "." + std::to_string(I));
  size_t Grown = Reg.numCounters() - Before;
  // At most the 16-reason budget plus the "other" overflow counter, no
  // matter how many distinct reasons were reported.
  EXPECT_LE(Grown, 17u);
  // And the cap stays in force for later calls.
  size_t Mid = Reg.numCounters();
  for (int I = 0; I < 10; ++I)
    recordParseFailureReason("late flood " + std::to_string(I));
  EXPECT_LE(Reg.numCounters() - Mid, 1u);
}

TEST(Qualitative, Fig1aTopCandidatesAreFlagNames) {
  const Corpus &C = corpusFor(Language::JavaScript);
  TrainedNameModel Model(C, Task::VariableNames, defaultOptions());
  // Parse Fig. 1a with the corpus interner.
  lang::ParseResult R = js::parse(
      "function waitUntilReady() { var d = false; while (!d) { if "
      "(someCondition()) { d = true; } } return d; }",
      *C.Interner);
  ASSERT_TRUE(R.ok());
  auto Pred = Model.predict(*R.Tree);
  ASSERT_FALSE(Pred.empty());
  // Find element `d` and check the prediction is a flag-style name.
  for (const auto &[E, Name] : Pred) {
    if (C.Interner->str(R.Tree->element(E).Name) != "d")
      continue;
    ASSERT_TRUE(Name.isValid());
    EXPECT_EQ(C.Interner->str(Name), "done");
    auto Top = Model.topKFor(*R.Tree, E, 5);
    ASSERT_GE(Top.size(), 2u);
    EXPECT_EQ(C.Interner->str(Top[0].first), "done");
  }
}

} // namespace
