//===- experiments_test.cpp - Integration tests for the pipeline -----------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end tests: generate a corpus, parse it, train models, and check
/// that the paper's qualitative orderings hold (AST paths beat the
/// baselines; the type task beats the String baseline; etc.).
///
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include "lang/js/JsParser.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace pigeon;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

/// Small-but-meaningful corpus, cached per language across tests.
const Corpus &corpusFor(Language Lang) {
  static std::map<Language, Corpus> Cache;
  auto It = Cache.find(Lang);
  if (It == Cache.end()) {
    datagen::CorpusSpec Spec = datagen::defaultSpec(Lang, /*Seed=*/11);
    Spec.NumProjects = 40;
    It = Cache.emplace(Lang,
                       parseCorpus(datagen::generateCorpus(Spec), Lang))
             .first;
  }
  return It->second;
}

CrfExperimentOptions defaultOptions() {
  CrfExperimentOptions Options;
  Options.Extraction.MaxLength = 4;
  Options.Extraction.MaxWidth = 3;
  Options.Crf.Epochs = 4;
  return Options;
}

TEST(PipelineTest, ParsesWholeCorpus) {
  const Corpus &C = corpusFor(Language::JavaScript);
  EXPECT_EQ(C.ParseFailures, 0u);
  EXPECT_EQ(C.Files.size(), 640u);
  EXPECT_EQ(C.numProjects(), 40u);
  EXPECT_GT(C.SourceBytes, 10000u);
}

TEST(PipelineTest, SplitSeparatesProjects) {
  const Corpus &C = corpusFor(Language::JavaScript);
  Split S = splitByProject(C, 0.25, 42);
  EXPECT_FALSE(S.Train.empty());
  EXPECT_FALSE(S.Test.empty());
  EXPECT_EQ(S.Train.size() + S.Test.size(), C.Files.size());
  std::set<std::string> TrainProjects, TestProjects;
  for (size_t I : S.Train)
    TrainProjects.insert(C.Files[I].Project);
  for (size_t I : S.Test)
    TestProjects.insert(C.Files[I].Project);
  for (const std::string &P : TestProjects)
    EXPECT_FALSE(TrainProjects.count(P)) << "project leaked: " << P;
}

TEST(PipelineTest, SplitIsDeterministic) {
  const Corpus &C = corpusFor(Language::JavaScript);
  Split A = splitByProject(C, 0.25, 42);
  Split B = splitByProject(C, 0.25, 42);
  EXPECT_EQ(A.Train, B.Train);
  EXPECT_EQ(A.Test, B.Test);
  Split Other = splitByProject(C, 0.25, 43);
  EXPECT_NE(A.Test, Other.Test);
}

TEST(ExperimentsVarNames, AstPathsLearnSomething) {
  ExperimentResult R = runCrfNameExperiment(
      corpusFor(Language::JavaScript), Task::VariableNames,
      defaultOptions());
  EXPECT_GT(R.Predictions, 50u);
  EXPECT_GT(R.Accuracy, 0.45) << "paths should predict most modal names";
  EXPECT_GT(R.NumFeatures, 100u);
  EXPECT_GT(R.DistinctPaths, 50u);
}

TEST(ExperimentsVarNames, PathsBeatNoPaths) {
  const Corpus &C = corpusFor(Language::JavaScript);
  CrfExperimentOptions Options = defaultOptions();
  ExperimentResult Paths =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  Options.Repr = Representation::NoPaths;
  ExperimentResult NoPaths =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  EXPECT_GT(Paths.Accuracy, NoPaths.Accuracy)
      << "paths=" << Paths.Accuracy << " nopaths=" << NoPaths.Accuracy;
}

TEST(ExperimentsVarNames, PathsBeatIntraStatement) {
  const Corpus &C = corpusFor(Language::JavaScript);
  CrfExperimentOptions Options = defaultOptions();
  ExperimentResult Paths =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  Options.Repr = Representation::IntraStatement;
  ExperimentResult Intra =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  EXPECT_GT(Paths.Accuracy, Intra.Accuracy)
      << "paths=" << Paths.Accuracy << " intra=" << Intra.Accuracy;
}

TEST(ExperimentsVarNames, PathsBeatNgramsOnJava) {
  const Corpus &C = corpusFor(Language::Java);
  CrfExperimentOptions Options = defaultOptions();
  Options.Extraction = tunedExtraction(Language::Java, Task::VariableNames);
  ExperimentResult Paths =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  Options.Repr = Representation::Ngrams;
  ExperimentResult Ngrams =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  EXPECT_GT(Paths.Accuracy, Ngrams.Accuracy)
      << "paths=" << Paths.Accuracy << " ngrams=" << Ngrams.Accuracy;
}

TEST(ExperimentsVarNames, RuleBasedIsWeakOnJava) {
  const Corpus &C = corpusFor(Language::Java);
  ExperimentResult Rules = runRuleBasedJava(C, 0.25, 42);
  CrfExperimentOptions Options = defaultOptions();
  Options.Extraction = tunedExtraction(Language::Java, Task::VariableNames);
  ExperimentResult Paths =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  EXPECT_GT(Rules.Predictions, 20u);
  EXPECT_GT(Paths.Accuracy, Rules.Accuracy)
      << "paths=" << Paths.Accuracy << " rules=" << Rules.Accuracy;
}

TEST(ExperimentsVarNames, DownsamplingDegradesGracefully) {
  const Corpus &C = corpusFor(Language::JavaScript);
  CrfExperimentOptions Options = defaultOptions();
  ExperimentResult Full =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  Options.DownsampleP = 0.5;
  ExperimentResult Half =
      runCrfNameExperiment(C, Task::VariableNames, Options);
  EXPECT_LT(Half.TrainContexts, Full.TrainContexts);
  // Half the contexts must not collapse accuracy (Fig. 11's flatness).
  EXPECT_GT(Half.Accuracy, Full.Accuracy - 0.15);
}

TEST(ExperimentsMethodNames, PathsPredictMethodNames) {
  ExperimentResult R = runCrfNameExperiment(
      corpusFor(Language::JavaScript), Task::MethodNames, defaultOptions());
  EXPECT_GT(R.Predictions, 20u);
  EXPECT_GT(R.Accuracy, 0.3);
  EXPECT_GT(R.SubtokenF1, R.Accuracy)
      << "sub-token F1 credits partial matches";
}

TEST(ExperimentsMethodNames, SubtokenBaselineRunsOnJava) {
  const Corpus &C = corpusFor(Language::Java);
  ExperimentResult Sub = runSubtokenMethodNamer(C, 0.25, 42);
  EXPECT_GT(Sub.Predictions, 20u);
  ExperimentResult Paths =
      runCrfNameExperiment(C, Task::MethodNames, defaultOptions());
  EXPECT_GT(Paths.Accuracy, Sub.Accuracy)
      << "paths=" << Paths.Accuracy << " subtoken=" << Sub.Accuracy;
}

TEST(ExperimentsTypes, TypePredictionBeatsStringBaseline) {
  const Corpus &C = corpusFor(Language::Java);
  CrfExperimentOptions Options = defaultOptions();
  Options.Extraction.MaxLength = 4;
  Options.Extraction.MaxWidth = 1;
  ExperimentResult Types = runCrfTypeExperiment(C, Options);
  ExperimentResult Naive = runStringTypeBaseline(C, 0.25, 42);
  EXPECT_GT(Types.Predictions, 100u);
  EXPECT_GT(Types.Accuracy, 0.5);
  EXPECT_GT(Types.Accuracy, Naive.Accuracy + 0.2)
      << "types=" << Types.Accuracy << " naive=" << Naive.Accuracy;
  EXPECT_GT(Naive.Accuracy, 0.05);
}

TEST(ExperimentsW2v, PathsBeatTokenStream) {
  const Corpus &C = corpusFor(Language::JavaScript);
  W2vExperimentOptions Options;
  Options.Sgns.Epochs = 4;
  ExperimentResult Paths = runW2vNameExperiment(C, Options);
  Options.Contexts = W2vContexts::TokenStream;
  ExperimentResult Tokens = runW2vNameExperiment(C, Options);
  Options.Contexts = W2vContexts::PathNeighbors;
  ExperimentResult Neighbors = runW2vNameExperiment(C, Options);
  EXPECT_GT(Paths.Accuracy, Tokens.Accuracy)
      << "paths=" << Paths.Accuracy << " tokens=" << Tokens.Accuracy;
  EXPECT_GT(Paths.Accuracy, Neighbors.Accuracy)
      << "paths=" << Paths.Accuracy << " nb=" << Neighbors.Accuracy;
}

TEST(Qualitative, Fig1aTopCandidatesAreFlagNames) {
  const Corpus &C = corpusFor(Language::JavaScript);
  TrainedNameModel Model(C, Task::VariableNames, defaultOptions());
  // Parse Fig. 1a with the corpus interner.
  lang::ParseResult R = js::parse(
      "function waitUntilReady() { var d = false; while (!d) { if "
      "(someCondition()) { d = true; } } return d; }",
      *C.Interner);
  ASSERT_TRUE(R.ok());
  auto Pred = Model.predict(*R.Tree);
  ASSERT_FALSE(Pred.empty());
  // Find element `d` and check the prediction is a flag-style name.
  for (const auto &[E, Name] : Pred) {
    if (C.Interner->str(R.Tree->element(E).Name) != "d")
      continue;
    ASSERT_TRUE(Name.isValid());
    EXPECT_EQ(C.Interner->str(Name), "done");
    auto Top = Model.topKFor(*R.Tree, E, 5);
    ASSERT_GE(Top.size(), 2u);
    EXPECT_EQ(C.Interner->str(Top[0].first), "done");
  }
}

} // namespace
