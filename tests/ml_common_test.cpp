//===- ml_common_test.cpp - Unit tests for metrics and vocabularies --------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/common/Metrics.h"
#include "ml/common/Vocab.h"

#include <gtest/gtest.h>

using namespace pigeon;
using namespace pigeon::ml;

namespace {

TEST(AccuracyMeter, ExactMatchesCount) {
  AccuracyMeter M;
  M.add("done", "done");
  M.add("count", "total");
  EXPECT_EQ(M.total(), 2u);
  EXPECT_EQ(M.correct(), 1u);
  EXPECT_DOUBLE_EQ(M.accuracy(), 0.5);
}

TEST(AccuracyMeter, SeparatorAndCaseInsensitive) {
  AccuracyMeter M;
  M.add("totalCount", "total_count"); // §5.2's example.
  M.add("Done", "done");
  EXPECT_EQ(M.correct(), 2u);
}

TEST(AccuracyMeter, EmptyPredictionIsWrong) {
  AccuracyMeter M;
  M.add("", "anything");
  EXPECT_EQ(M.correct(), 0u);
}

TEST(AccuracyMeter, AddWrongCountsAgainst) {
  AccuracyMeter M;
  M.addWrong(); // UNK test label.
  M.add("x", "x");
  EXPECT_DOUBLE_EQ(M.accuracy(), 0.5);
}

TEST(AccuracyMeter, EmptyMeterIsZero) {
  AccuracyMeter M;
  EXPECT_DOUBLE_EQ(M.accuracy(), 0.0);
}

TEST(SubTokenMeter, MicroAveragedF1) {
  SubTokenMeter M;
  // Prediction getFoo vs getFooBar: 2 hits, 2 predicted, 3 actual.
  M.add("getFoo", "getFooBar");
  EXPECT_DOUBLE_EQ(M.precision(), 1.0);
  EXPECT_NEAR(M.recall(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(M.f1(), 0.8, 1e-9);
}

TEST(SubTokenMeter, AccumulatesAcrossExamples) {
  SubTokenMeter M;
  M.add("getFoo", "getFoo");   // 2/2, 2/2.
  M.add("setBar", "setQux");   // 1 hit of 2 and 2.
  EXPECT_DOUBLE_EQ(M.precision(), 0.75);
  EXPECT_DOUBLE_EQ(M.recall(), 0.75);
}

TEST(LabelVocab, CountsAndContains) {
  StringInterner SI;
  LabelVocab V;
  Symbol A = SI.intern("count"), B = SI.intern("done");
  V.add(A);
  V.add(A);
  V.add(B);
  EXPECT_TRUE(V.contains(A));
  EXPECT_FALSE(V.contains(SI.intern("missing")));
  EXPECT_EQ(V.count(A), 2u);
  EXPECT_EQ(V.size(), 2u);
  EXPECT_EQ(V.totalCount(), 3u);
}

TEST(LabelVocab, TopLabelsByFrequency) {
  StringInterner SI;
  LabelVocab V;
  Symbol A = SI.intern("a"), B = SI.intern("b"), C = SI.intern("c");
  for (int I = 0; I < 3; ++I)
    V.add(B);
  for (int I = 0; I < 2; ++I)
    V.add(C);
  V.add(A);
  auto Top = V.topLabels(2);
  ASSERT_EQ(Top.size(), 2u);
  EXPECT_EQ(Top[0], B);
  EXPECT_EQ(Top[1], C);
  EXPECT_EQ(V.topLabels().size(), 3u);
}

TEST(LabelVocab, DeterministicTieBreak) {
  StringInterner SI;
  LabelVocab V;
  Symbol A = SI.intern("a"), B = SI.intern("b");
  V.add(B);
  V.add(A);
  auto Top = V.topLabels();
  // Equal counts: lower symbol index ("a" was interned first) wins.
  EXPECT_EQ(Top[0], A);
  EXPECT_EQ(Top[1], B);
}

} // namespace
