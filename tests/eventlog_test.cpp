//===- eventlog_test.cpp - Unit tests for support/EventLog -----------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/EventLog.h"

#include "support/Json.h"
#include "support/Parallel.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace pigeon;
using namespace pigeon::telemetry;

namespace {

/// Parses every line of \p Text as one JSON object; fails the test on any
/// malformed line.
std::vector<json::Value> parseLines(const std::string &Text) {
  std::vector<json::Value> Out;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::string Error;
    std::optional<json::Value> V = json::parse(Line, &Error);
    EXPECT_TRUE(V.has_value()) << Error << " in: " << Line;
    if (V)
      Out.push_back(std::move(*V));
  }
  return Out;
}

std::string eventOf(const json::Value &V) {
  const json::Value *E = V.find("event");
  return E ? E->str() : "";
}

} // namespace

TEST(EventLog, DisabledLogIsANoOp) {
  EventLog Log;
  EXPECT_FALSE(Log.enabled());
  // Emissions on a closed log must be harmless.
  Log.record("prediction", {{"gold", jsonString("x")}});
  Log.spanBegin(1, 0, "parse");
  Log.spanEnd(1, 0, "parse", 0.1, 0.1);
  Log.close();
}

TEST(EventLog, StreamFramingAndFieldRendering) {
  EventLog Log;
  std::ostringstream OS;
  Log.attach(OS);
  EXPECT_TRUE(Log.enabled());
  Log.record("prediction", {{"gold", jsonString("do\ne")},
                            {"score", jsonNumber(2.5)},
                            {"correct", "true"}});
  Log.close();
  EXPECT_FALSE(Log.enabled());

  std::vector<json::Value> Lines = parseLines(OS.str());
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_EQ(eventOf(Lines.front()), "stream.begin");
  EXPECT_EQ(Lines.front().find("schema")->str(), "pigeon.events.v1");
  EXPECT_EQ(eventOf(Lines.back()), "stream.end");
  // stream.end counts the records between the frame lines.
  EXPECT_DOUBLE_EQ(Lines.back().find("records")->number(), 1.0);

  const json::Value &P = Lines[1];
  EXPECT_EQ(eventOf(P), "prediction");
  EXPECT_EQ(P.find("gold")->str(), "do\ne"); // escape round-trips
  EXPECT_DOUBLE_EQ(P.find("score")->number(), 2.5);
  EXPECT_TRUE(P.find("correct")->boolean());
  EXPECT_GE(P.find("ts")->number(), 0.0);
  EXPECT_GE(P.find("tid")->number(), 0.0);
}

TEST(EventLog, CloseIsIdempotent) {
  EventLog Log;
  std::ostringstream OS;
  Log.attach(OS);
  Log.record("x", {});
  Log.close();
  Log.close();
  std::vector<json::Value> Lines = parseLines(OS.str());
  size_t Ends = 0;
  for (const json::Value &V : Lines)
    Ends += eventOf(V) == "stream.end";
  EXPECT_EQ(Ends, 1u);
}

TEST(EventLog, NonFiniteNumbersRenderAsNull) {
  EXPECT_EQ(jsonNumber(std::nan("")), "null");
  EXPECT_EQ(jsonNumber(1.0 / 0.0), "null");
  EXPECT_EQ(jsonNumber(-1.0 / 0.0), "null");
  EXPECT_EQ(jsonNumber(0.25), "0.25");
}

TEST(EventLog, TraceScopesEmitNestedSpans) {
  EventLog &Log = EventLog::global();
  std::ostringstream OS;
  Log.attach(OS);
  {
    TraceScope Train("el.train");
    { TraceScope Extract("el.extract"); }
    { TraceScope Epoch("el.epoch"); }
  }
  Log.close();

  std::vector<json::Value> Lines = parseLines(OS.str());
  // Collect span.begin records by name; check parenting via span ids.
  uint64_t TrainSpan = 0;
  std::vector<std::pair<std::string, uint64_t>> Parents;
  for (const json::Value &V : Lines) {
    if (eventOf(V) != "span.begin")
      continue;
    std::string Name = V.find("name")->str();
    if (Name == "el.train")
      TrainSpan = static_cast<uint64_t>(V.find("span")->number());
    Parents.emplace_back(Name,
                         static_cast<uint64_t>(V.find("parent")->number()));
  }
  ASSERT_EQ(Parents.size(), 3u);
  ASSERT_NE(TrainSpan, 0u);
  for (const auto &[Name, Parent] : Parents) {
    if (Name == "el.train")
      EXPECT_EQ(Parent, 0u) << "top-level phase has no parent span";
    else
      EXPECT_EQ(Parent, TrainSpan) << Name << " must nest under el.train";
  }
  // Every span.end carries wall time and an RSS sample.
  for (const json::Value &V : Lines) {
    if (eventOf(V) != "span.end")
      continue;
    EXPECT_GE(V.find("wall")->number(), 0.0);
    ASSERT_NE(V.find("rss_kb"), nullptr);
  }
}

TEST(EventLog, ParallelChunksNestUnderSpawningStage) {
  EventLog &Log = EventLog::global();
  std::ostringstream OS;
  Log.attach(OS);
  std::atomic<uint64_t> Sum{0};
  {
    TraceScope Stage("el.infer");
    parallel::parallelFor(64, 4, [&](size_t I) { Sum += I; });
  }
  Log.close();
  EXPECT_EQ(Sum.load(), 64u * 63 / 2);

  std::vector<json::Value> Lines = parseLines(OS.str());
  uint64_t StageSpan = 0;
  for (const json::Value &V : Lines)
    if (eventOf(V) == "span.begin" && V.find("name")->str() == "el.infer")
      StageSpan = static_cast<uint64_t>(V.find("span")->number());
  ASSERT_NE(StageSpan, 0u);

  size_t Chunks = 0;
  std::set<uint64_t> Tids;
  for (const json::Value &V : Lines) {
    if (eventOf(V) != "span.begin" ||
        V.find("name")->str() != "parallel.chunk")
      continue;
    ++Chunks;
    // Workers inherit the spawner's context: every chunk span is a child
    // of the stage span even when it ran on a pool thread.
    EXPECT_EQ(static_cast<uint64_t>(V.find("parent")->number()), StageSpan);
    // Chunk spans carry their index range.
    ASSERT_NE(V.find("chunk"), nullptr);
    ASSERT_NE(V.find("begin"), nullptr);
    ASSERT_NE(V.find("end"), nullptr);
    Tids.insert(static_cast<uint64_t>(V.find("tid")->number()));
  }
  EXPECT_GT(Chunks, 0u);
  // tid is a small per-thread id; with 4 executors there are at most 4.
  EXPECT_LE(Tids.size(), 4u);
}

TEST(EventLog, ConcurrentRecordsStayLineAtomic) {
  EventLog Log;
  std::ostringstream OS;
  Log.attach(OS);
  constexpr int Threads = 8, PerThread = 200;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      for (int I = 0; I < PerThread; ++I)
        Log.record("tick", {{"t", std::to_string(T)}});
    });
  for (std::thread &Th : Pool)
    Th.join();
  Log.close();

  // Every line parses — interleaved but never torn — and all records
  // plus the two frame lines are present.
  std::vector<json::Value> Lines = parseLines(OS.str());
  EXPECT_EQ(Lines.size(), 2u + Threads * PerThread);
  std::set<uint64_t> Tids;
  for (const json::Value &V : Lines)
    if (eventOf(V) == "tick")
      Tids.insert(static_cast<uint64_t>(V.find("tid")->number()));
  EXPECT_EQ(Tids.size(), static_cast<size_t>(Threads));
}

//===----------------------------------------------------------------------===//
// Flight recorder ring
//===----------------------------------------------------------------------===//

TEST(FlightRecorder, RingAloneEnablesTheLogAndKeepsTheLastN) {
  EventLog Log;
  Log.enableRing(4);
  EXPECT_TRUE(Log.enabled()); // No stream attached, yet records flow.
  EXPECT_TRUE(Log.ringEnabled());
  EXPECT_EQ(Log.ringCapacity(), 4u);

  for (int I = 0; I < 10; ++I)
    Log.record("tick", {{"i", std::to_string(I)}});
  EXPECT_EQ(Log.ringTotal(), 10u);

  // Wraparound keeps exactly the last 4, oldest first.
  std::vector<std::string> Lines = Log.ringSnapshot();
  ASSERT_EQ(Lines.size(), 4u);
  for (size_t I = 0; I < 4; ++I) {
    std::optional<json::Value> V = json::parse(Lines[I]);
    ASSERT_TRUE(V.has_value()) << Lines[I];
    EXPECT_DOUBLE_EQ(V->find("i")->number(), static_cast<double>(6 + I));
  }

  Log.disableRing();
  EXPECT_FALSE(Log.enabled());
  EXPECT_TRUE(Log.ringSnapshot().empty());
}

TEST(FlightRecorder, PartialRingBeforeWraparound) {
  EventLog Log;
  Log.enableRing(8);
  Log.record("a", {});
  Log.record("b", {});
  std::vector<std::string> Lines = Log.ringSnapshot();
  ASSERT_EQ(Lines.size(), 2u);
  EXPECT_NE(Lines[0].find("\"event\":\"a\""), std::string::npos);
  EXPECT_NE(Lines[1].find("\"event\":\"b\""), std::string::npos);
}

TEST(FlightRecorder, DumpRingWritesWellFormedJsonl) {
  const std::string Path = ::testing::TempDir() + "flightrec_dump.jsonl";
  EventLog Log;
  Log.enableRing(3);
  EXPECT_FALSE(Log.dumpRing(Path)) << "empty ring must not write a file";
  for (int I = 0; I < 5; ++I)
    Log.record("tick", {{"i", std::to_string(I)}});
  ASSERT_TRUE(Log.dumpRing(Path));

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::vector<json::Value> Lines = parseLines(Buffer.str());
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_DOUBLE_EQ(Lines.front().find("i")->number(), 2.0);
  EXPECT_DOUBLE_EQ(Lines.back().find("i")->number(), 4.0);
  std::remove(Path.c_str());
}

TEST(FlightRecorder, RingCapturesAlongsideAnAttachedStream) {
  EventLog Log;
  std::ostringstream OS;
  Log.attach(OS);
  Log.enableRing(16);
  Log.record("both", {{"k", jsonString("v")}});
  Log.close(); // Ends the stream; the ring survives.
  ASSERT_EQ(Log.ringSnapshot().size(), 1u);
  EXPECT_NE(Log.ringSnapshot()[0].find("\"event\":\"both\""),
            std::string::npos);
  EXPECT_NE(OS.str().find("\"event\":\"both\""), std::string::npos);
  Log.disableRing();
}

//===----------------------------------------------------------------------===//
// Segment rotation
//===----------------------------------------------------------------------===//

namespace {

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

} // namespace

TEST(EventLogRotation, RotatesIntoACappedPreviousSegment) {
  const std::string Path = ::testing::TempDir() + "rotating_trace.jsonl";
  std::remove(Path.c_str());
  std::remove((Path + ".1").c_str());

  EventLog Log;
  ASSERT_TRUE(Log.open(Path));
  Log.setRotation(2048); // Tiny cap: a few dozen records per segment.
  EXPECT_EQ(Log.segmentIndex(), 0u);
  for (int I = 0; I < 200; ++I)
    Log.record("tick", {{"i", std::to_string(I)},
                        {"pad", jsonString(std::string(32, 'x'))}});
  EXPECT_GT(Log.segmentIndex(), 0u);
  Log.close();

  // Both segments exist, parse line-by-line, and are framed: the rotated
  // segment ends with a stream.end trailer, the live one begins with a
  // stream.begin carrying its segment index.
  std::vector<json::Value> Prev = parseLines(slurp(Path + ".1"));
  std::vector<json::Value> Live = parseLines(slurp(Path));
  ASSERT_GE(Prev.size(), 2u);
  ASSERT_GE(Live.size(), 2u);
  EXPECT_EQ(eventOf(Prev.back()), "stream.end");
  EXPECT_EQ(eventOf(Live.front()), "stream.begin");
  EXPECT_EQ(eventOf(Live.back()), "stream.end");
  EXPECT_GT(Live.front().find("segment")->number(), 0.0);

  // The previous segment's payload stays under the cap (the trailer may
  // straddle it); records are contiguous mod rotation — the first live
  // payload record follows the last rotated one.
  uint64_t LastPrev = 0, FirstLive = 0;
  for (const json::Value &V : Prev)
    if (eventOf(V) == "tick")
      LastPrev = static_cast<uint64_t>(V.find("i")->number());
  for (const json::Value &V : Live)
    if (eventOf(V) == "tick") {
      FirstLive = static_cast<uint64_t>(V.find("i")->number());
      break;
    }
  EXPECT_EQ(FirstLive, LastPrev + 1);

  std::remove(Path.c_str());
  std::remove((Path + ".1").c_str());
}

TEST(EventLogRotation, UnrotatedStreamIsByteIdenticalToUncapped) {
  // A cap the stream never reaches must not change the output shape.
  const std::string Path = ::testing::TempDir() + "uncapped_trace.jsonl";
  EventLog Log;
  ASSERT_TRUE(Log.open(Path));
  Log.setRotation(64 << 20);
  for (int I = 0; I < 10; ++I)
    Log.record("tick", {{"i", std::to_string(I)}});
  Log.close();
  EXPECT_EQ(Log.segmentIndex(), 0u);
  std::vector<json::Value> Lines = parseLines(slurp(Path));
  EXPECT_EQ(Lines.size(), 12u); // begin + 10 + end.
  std::remove(Path.c_str());
}
