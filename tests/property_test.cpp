//===- property_test.cpp - Parameterized property tests ---------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Property-style sweeps over (language × seed) using parameterized
/// gtest: invariants of generated corpora, parsed trees, extracted paths
/// and CRF graphs that must hold regardless of the inputs.
///
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "ml/crf/Crf.h"
#include "paths/Paths.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::core;
using namespace pigeon::paths;
using pigeon::lang::Language;

namespace {

struct CorpusParam {
  Language Lang;
  uint64_t Seed;
};

std::string paramName(const testing::TestParamInfo<CorpusParam> &Info) {
  std::string Name = lang::languageName(Info.param.Lang);
  if (Name == "C#")
    Name = "CSharp";
  return Name + "_seed" + std::to_string(Info.param.Seed);
}

class CorpusProperty : public testing::TestWithParam<CorpusParam> {
protected:
  static const Corpus &corpus() {
    static std::map<std::pair<int, uint64_t>, Corpus> Cache;
    CorpusParam P = GetParam();
    auto Key = std::make_pair(static_cast<int>(P.Lang), P.Seed);
    auto It = Cache.find(Key);
    if (It == Cache.end()) {
      datagen::CorpusSpec Spec = datagen::defaultSpec(P.Lang, P.Seed);
      Spec.NumProjects = 6;
      Spec.FilesPerProject = 8;
      It = Cache
               .emplace(Key, parseCorpus(datagen::generateCorpus(Spec),
                                         P.Lang))
               .first;
    }
    return It->second;
  }
};

//===----------------------------------------------------------------------===//
// Corpus and tree invariants
//===----------------------------------------------------------------------===//

TEST_P(CorpusProperty, EveryFileParses) {
  EXPECT_EQ(corpus().ParseFailures, 0u);
  EXPECT_EQ(corpus().Files.size(), 48u);
}

TEST_P(CorpusProperty, TreeStructureInvariants) {
  for (const ParsedFile &File : corpus().Files) {
    const Tree &T = File.Tree;
    // Parent/child coherence and preorder numbering.
    for (NodeId Id = 1; Id < T.size(); ++Id) {
      const Node &N = T.node(Id);
      ASSERT_NE(N.Parent, InvalidNode) << "only the root lacks a parent";
      ASSERT_LT(N.Parent, Id) << "parents precede children in preorder";
      EXPECT_EQ(T.node(N.Parent).Depth + 1, N.Depth);
      auto Siblings = T.children(N.Parent);
      ASSERT_LT(N.IndexInParent, Siblings.size());
      EXPECT_EQ(Siblings[N.IndexInParent], Id);
    }
    // Terminals are exactly the value-carrying leaves, in id order.
    size_t LeafCount = 0;
    for (NodeId Id = 0; Id < T.size(); ++Id)
      if (T.node(Id).isTerminal())
        ++LeafCount;
    EXPECT_EQ(LeafCount, T.terminals().size());
  }
}

TEST_P(CorpusProperty, ElementOccurrencesAreConsistent) {
  for (const ParsedFile &File : corpus().Files) {
    const Tree &T = File.Tree;
    for (ElementId E = 0; E < T.elements().size(); ++E) {
      for (NodeId Occ : T.occurrences(E)) {
        EXPECT_EQ(T.node(Occ).Element, E)
            << "occurrence lists must round-trip through node elements";
        EXPECT_TRUE(T.node(Occ).isTerminal());
      }
    }
  }
}

TEST_P(CorpusProperty, GenerationIsDeterministic) {
  CorpusParam P = GetParam();
  datagen::CorpusSpec Spec = datagen::defaultSpec(P.Lang, P.Seed);
  Spec.NumProjects = 2;
  auto A = datagen::generateCorpus(Spec);
  auto B = datagen::generateCorpus(Spec);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I].Text, B[I].Text);
}

//===----------------------------------------------------------------------===//
// Path-extraction invariants
//===----------------------------------------------------------------------===//

TEST_P(CorpusProperty, ExtractionRespectsLimits) {
  PathTable Table;
  ExtractionConfig Config;
  Config.MaxLength = 5;
  Config.MaxWidth = 2;
  for (const ParsedFile &File : corpus().Files) {
    const Tree &T = File.Tree;
    for (const PathContext &Ctx : extractPathContexts(T, Config, Table)) {
      PathShape Shape = pathShape(T, Ctx.Start, Ctx.End);
      EXPECT_LE(Shape.Length, Config.MaxLength);
      EXPECT_LE(Shape.Width, Config.MaxWidth);
      if (Ctx.Semi) {
        EXPECT_EQ(Shape.Pivot, Ctx.End);
      }
    }
  }
}

TEST_P(CorpusProperty, WiderLimitsExtractSupersets) {
  PathTable Table;
  ExtractionConfig Narrow, Wide;
  Narrow.MaxLength = 4;
  Narrow.MaxWidth = 2;
  Wide.MaxLength = 7;
  Wide.MaxWidth = 3;
  for (size_t I = 0; I < 5 && I < corpus().Files.size(); ++I) {
    const Tree &T = corpus().Files[I].Tree;
    auto NarrowSet = extractPathContexts(T, Narrow, Table);
    auto WideSet = extractPathContexts(T, Wide, Table);
    EXPECT_GE(WideSet.size(), NarrowSet.size());
    // Every narrow pair is found among the wide pairs.
    std::set<std::pair<NodeId, NodeId>> WidePairs;
    for (const PathContext &Ctx : WideSet)
      WidePairs.emplace(Ctx.Start, Ctx.End);
    for (const PathContext &Ctx : NarrowSet)
      EXPECT_TRUE(WidePairs.count({Ctx.Start, Ctx.End}));
  }
}

TEST_P(CorpusProperty, AbstractionRefinementsNeverGrowVocabulary) {
  // The ladder is not a total order (first-last and top are
  // incomparable), but along each genuine refinement chain a coarser
  // abstraction can never have MORE distinct paths than a finer one:
  //   full ⊒ no-arrows ⊒ forget-order ⊒ no-path
  //   full ⊒ first-top-last ⊒ top ⊒ no-path
  //   full ⊒ first-top-last ⊒ first-last ⊒ no-path
  auto VocabularyOf = [&](Abstraction A) {
    PathTable Table;
    ExtractionConfig Config;
    Config.Abst = A;
    for (const ParsedFile &File : corpus().Files)
      extractPathContexts(File.Tree, Config, Table);
    return Table.size();
  };
  size_t Full = VocabularyOf(Abstraction::Full);
  size_t NoArrows = VocabularyOf(Abstraction::NoArrows);
  size_t ForgetOrder = VocabularyOf(Abstraction::ForgetOrder);
  size_t FirstTopLast = VocabularyOf(Abstraction::FirstTopLast);
  size_t FirstLast = VocabularyOf(Abstraction::FirstLast);
  size_t Top = VocabularyOf(Abstraction::Top);
  size_t NoPath = VocabularyOf(Abstraction::NoPath);
  EXPECT_GE(Full, NoArrows);
  EXPECT_GE(NoArrows, ForgetOrder);
  EXPECT_GE(ForgetOrder, NoPath);
  EXPECT_GE(Full, FirstTopLast);
  EXPECT_GE(FirstTopLast, Top);
  EXPECT_GE(FirstTopLast, FirstLast);
  EXPECT_GE(FirstLast, NoPath);
  EXPECT_EQ(NoPath, 1u);
}

TEST_P(CorpusProperty, PathStringsRoundTripDeterministically) {
  const Tree &T = corpus().Files.front().Tree;
  auto Leaves = T.terminals();
  ASSERT_GE(Leaves.size(), 2u);
  for (size_t I = 0; I + 1 < Leaves.size() && I < 10; ++I) {
    std::string A = pathString(T, Leaves[I], Leaves[I + 1],
                               Abstraction::Full);
    std::string B = pathString(T, Leaves[I], Leaves[I + 1],
                               Abstraction::Full);
    EXPECT_EQ(A, B);
    EXPECT_FALSE(A.empty());
  }
}

//===----------------------------------------------------------------------===//
// CRF graph invariants
//===----------------------------------------------------------------------===//

TEST_P(CorpusProperty, GraphInvariants) {
  PathTable Table;
  ExtractionConfig Config;
  crf::ElementSelector Selector = selectorFor(Task::VariableNames);
  for (const ParsedFile &File : corpus().Files) {
    const Tree &T = File.Tree;
    crf::CrfGraph G = crf::buildGraph(
        T, extractPathContexts(T, Config, Table), Selector);
    std::set<uint32_t> UnknownSet(G.Unknowns.begin(), G.Unknowns.end());
    EXPECT_EQ(UnknownSet.size(), G.Unknowns.size()) << "no duplicates";
    for (uint32_t N : G.Unknowns)
      EXPECT_FALSE(G.Nodes[N].Known);
    for (const crf::Factor &F : G.Factors) {
      ASSERT_LT(F.A, G.Nodes.size());
      ASSERT_LT(F.B, G.Nodes.size());
      EXPECT_EQ(F.Unary, F.A == F.B);
      EXPECT_FALSE(G.Nodes[F.A].Known && G.Nodes[F.B].Known)
          << "known-known factors are dropped";
    }
  }
}

TEST_P(CorpusProperty, CrfModelSerializationRoundTrips) {
  PathTable Table;
  ExtractionConfig Config;
  crf::ElementSelector Selector = selectorFor(Task::VariableNames);
  std::vector<crf::CrfGraph> Graphs;
  for (size_t I = 0; I < 16 && I < corpus().Files.size(); ++I) {
    const Tree &T = corpus().Files[I].Tree;
    Graphs.push_back(crf::buildGraph(
        T, extractPathContexts(T, Config, Table), Selector));
  }
  crf::CrfConfig CC;
  CC.Epochs = 2;
  crf::CrfModel Model(CC);
  Model.train(Graphs);

  std::stringstream Buffer;
  Model.save(Buffer);
  crf::CrfModel Restored(CC);
  ASSERT_TRUE(Restored.load(Buffer));
  EXPECT_EQ(Restored.numFeatures(), Model.numFeatures());
  for (const crf::CrfGraph &G : Graphs) {
    std::vector<Symbol> A = Model.predict(G);
    std::vector<Symbol> B = Restored.predict(G);
    EXPECT_EQ(A, B) << "a restored model must predict identically";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLanguages, CorpusProperty,
    testing::Values(CorpusParam{Language::JavaScript, 3},
                    CorpusParam{Language::JavaScript, 9},
                    CorpusParam{Language::Java, 3},
                    CorpusParam{Language::Java, 9},
                    CorpusParam{Language::Python, 3},
                    CorpusParam{Language::Python, 9},
                    CorpusParam{Language::CSharp, 3},
                    CorpusParam{Language::CSharp, 9}),
    paramName);

//===----------------------------------------------------------------------===//
// Serialization corner cases
//===----------------------------------------------------------------------===//

TEST(CrfSerialization, RejectsGarbage) {
  std::stringstream Buffer("not a model");
  crf::CrfModel Model;
  EXPECT_FALSE(Model.load(Buffer));
  EXPECT_EQ(Model.numFeatures(), 0u);
}

TEST(CrfSerialization, RejectsTruncatedStream) {
  crf::CrfModel Model;
  Model.train({});
  std::stringstream Buffer;
  Model.save(Buffer);
  std::string Bytes = Buffer.str();
  std::stringstream Truncated(Bytes.substr(0, Bytes.size() / 2));
  crf::CrfModel Restored;
  // An empty model serializes to only counts; halving may still parse,
  // so assert no crash and consistent emptiness either way.
  bool Ok = Restored.load(Truncated);
  if (Ok) {
    EXPECT_EQ(Restored.numFeatures(), 0u);
  }
}

TEST(CrfSerialization, EmptyModelRoundTrips) {
  crf::CrfModel Model;
  Model.train({});
  std::stringstream Buffer;
  Model.save(Buffer);
  crf::CrfModel Restored;
  EXPECT_TRUE(Restored.load(Buffer));
  EXPECT_EQ(Restored.numFeatures(), 0u);
}

} // namespace
