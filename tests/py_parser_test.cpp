//===- py_parser_test.cpp - Unit tests for the MiniPy frontend -------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/python/PyParser.h"

#include <gtest/gtest.h>

using namespace pigeon;
using namespace pigeon::ast;

namespace {

std::string sexprOf(std::string_view Source) {
  StringInterner SI;
  lang::ParseResult R = py::parse(Source, SI);
  EXPECT_TRUE(R.Tree.has_value());
  for (const lang::Diagnostic &D : R.Diags)
    ADD_FAILURE() << "diagnostic: " << D.str() << " in: " << Source;
  return R.Tree ? R.Tree->sexpr() : "";
}

TEST(PyParser, EmptyModule) { EXPECT_EQ(sexprOf(""), "(Module)"); }

TEST(PyParser, SimpleAssignment) {
  EXPECT_EQ(sexprOf("x = 1\n"),
            "(Module (Assign (Name x) (Num 1)))");
}

TEST(PyParser, TupleAssignment) {
  // Fig. 7's `o, e = p.communicate()` shape.
  EXPECT_EQ(sexprOf("o, e = p.communicate()\n"),
            "(Module (Assign (Tuple (Name o) (Name e)) (Call (Attribute "
            "(Name p) (attr communicate)))))");
}

TEST(PyParser, AugmentedAssignment) {
  EXPECT_EQ(sexprOf("total += x\n"),
            "(Module (AugAssign+= (Name total) (Name x)))");
}

TEST(PyParser, FunctionDef) {
  EXPECT_EQ(sexprOf("def f(a, b):\n    return a\n"),
            "(Module (FunctionDef (FunctionName f) (arguments (arg a) (arg "
            "b)) (Body (Return (Name a)))))");
}

TEST(PyParser, DefaultParameter) {
  EXPECT_EQ(sexprOf("def f(a=1):\n    pass\n"),
            "(Module (FunctionDef (FunctionName f) (arguments (arg a) "
            "(default (Num 1))) (Body (Pass))))");
}

TEST(PyParser, Fig7Sh3Shape) {
  // The paper's Fig. 7 Python example (abbreviated).
  std::string S = sexprOf(
      "def sh3(c):\n"
      "    p = Popen(c, stdout=PIPE, stderr=PIPE, shell=True)\n"
      "    o, e = p.communicate()\n"
      "    r = p.returncode\n"
      "    if r:\n"
      "        raise CalledProcessError(r, c)\n"
      "    else:\n"
      "        return o.rstrip(), e.rstrip()\n");
  EXPECT_NE(S.find("(FunctionDef (FunctionName sh3) (arguments (arg c))"),
            std::string::npos);
  EXPECT_NE(S.find("(keyword (KeywordArg stdout) (Name PIPE))"),
            std::string::npos);
  EXPECT_NE(S.find("(Raise (Call (Name CalledProcessError) (Name r) (Name "
                   "c)))"),
            std::string::npos);
  EXPECT_NE(S.find("(Return (Tuple (Call (Attribute (Name o) (attr "
                   "rstrip))) (Call (Attribute (Name e) (attr rstrip)))))"),
            std::string::npos);
}

TEST(PyParser, IfElifElse) {
  EXPECT_EQ(
      sexprOf("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n"),
      "(Module (If (Name a) (Body (Assign (Name x) (Num 1))) (OrElse (If "
      "(Name b) (Body (Assign (Name x) (Num 2))) (OrElse (Body (Assign "
      "(Name x) (Num 3))))))))");
}

TEST(PyParser, WhileLoop) {
  EXPECT_EQ(sexprOf("while not done:\n    step()\n"),
            "(Module (While (UnaryOpNot (Name done)) (Body (Expr (Call "
            "(Name step))))))");
}

TEST(PyParser, ForLoop) {
  EXPECT_EQ(sexprOf("for item in items:\n    use(item)\n"),
            "(Module (For (Name item) (Name items) (Body (Expr (Call (Name "
            "use) (Name item))))))");
}

TEST(PyParser, ForWithTupleTarget) {
  EXPECT_EQ(sexprOf("for k, v in pairs:\n    pass\n"),
            "(Module (For (Tuple (Name k) (Name v)) (Name pairs) (Body "
            "(Pass))))");
}

TEST(PyParser, ComparisonOperators) {
  EXPECT_EQ(sexprOf("r = i < n\n"),
            "(Module (Assign (Name r) (Compare< (Name i) (Name n))))");
  EXPECT_EQ(sexprOf("r = x == y\n"),
            "(Module (Assign (Name r) (Compare== (Name x) (Name y))))");
}

TEST(PyParser, MembershipAndIdentity) {
  EXPECT_EQ(sexprOf("r = k in d\n"),
            "(Module (Assign (Name r) (Comparein (Name k) (Name d))))");
  EXPECT_EQ(sexprOf("r = x is None\n"),
            "(Module (Assign (Name r) (Compareis (Name x) (NameConstant "
            "None))))");
  EXPECT_EQ(sexprOf("r = x is not None\n"),
            "(Module (Assign (Name r) (Compareis not (Name x) "
            "(NameConstant None))))");
}

TEST(PyParser, BooleanPrecedence) {
  EXPECT_EQ(sexprOf("r = a or b and c\n"),
            "(Module (Assign (Name r) (BoolOpOr (Name a) (BoolOpAnd (Name "
            "b) (Name c)))))");
}

TEST(PyParser, ArithmeticPrecedence) {
  EXPECT_EQ(sexprOf("r = a + b * c\n"),
            "(Module (Assign (Name r) (BinOp+ (Name a) (BinOp* (Name b) "
            "(Name c)))))");
}

TEST(PyParser, ParenthesesGrouping) {
  EXPECT_EQ(sexprOf("r = (a + b) * c\n"),
            "(Module (Assign (Name r) (BinOp* (BinOp+ (Name a) (Name b)) "
            "(Name c))))");
}

TEST(PyParser, FloorDivAndPower) {
  EXPECT_EQ(sexprOf("r = a // b\n"),
            "(Module (Assign (Name r) (BinOp// (Name a) (Name b))))");
  EXPECT_EQ(sexprOf("r = a ** 2\n"),
            "(Module (Assign (Name r) (BinOp** (Name a) (Num 2))))");
}

TEST(PyParser, UnaryMinus) {
  EXPECT_EQ(sexprOf("r = -x\n"),
            "(Module (Assign (Name r) (UnaryOpUSub (Name x))))");
}

TEST(PyParser, TernaryIfExp) {
  EXPECT_EQ(sexprOf("r = a if cond else b\n"),
            "(Module (Assign (Name r) (IfExp (Name a) (Name cond) (Name "
            "b))))");
}

TEST(PyParser, ListAndDictLiterals) {
  EXPECT_EQ(sexprOf("xs = [1, 2]\n"),
            "(Module (Assign (Name xs) (List (Num 1) (Num 2))))");
  EXPECT_EQ(sexprOf("d = {'a': 1}\n"),
            "(Module (Assign (Name d) (Dict (DictItem (Str a) (Num 1)))))");
}

TEST(PyParser, SubscriptAndSlice) {
  EXPECT_EQ(sexprOf("v = xs[i]\n"),
            "(Module (Assign (Name v) (Subscript (Name xs) (Name i))))");
  EXPECT_EQ(sexprOf("v = xs[1:2]\n"),
            "(Module (Assign (Name v) (Subscript (Name xs) (Slice (Num 1) "
            "(Num 2)))))");
}

TEST(PyParser, ClassWithMethods) {
  std::string S = sexprOf("class Counter:\n"
                          "    def __init__(self):\n"
                          "        self.count = 0\n"
                          "    def inc(self):\n"
                          "        self.count += 1\n");
  EXPECT_NE(S.find("(ClassDef (ClassName Counter)"), std::string::npos);
  EXPECT_NE(S.find("(Assign (Attribute (Name self) (attr count)) (Num 0))"),
            std::string::npos);
  EXPECT_NE(S.find("(AugAssign+= (Attribute (Name self) (attr count)) (Num "
                   "1))"),
            std::string::npos);
}

TEST(PyParser, TryExceptFinally) {
  std::string S = sexprOf("try:\n    f()\nexcept ValueError as e:\n    "
                          "g(e)\nfinally:\n    h()\n");
  EXPECT_NE(S.find("(Try (Body (Expr (Call (Name f)))) (ExceptHandler "
                   "(ExceptType (Name ValueError)) (ExceptName e) (Body "
                   "(Expr (Call (Name g) (Name e)))))"),
            std::string::npos);
  EXPECT_NE(S.find("(FinallyBody (Body (Expr (Call (Name h)))))"),
            std::string::npos);
}

TEST(PyParser, Imports) {
  EXPECT_EQ(sexprOf("import os.path\n"),
            "(Module (Import (alias os.path)))");
  EXPECT_EQ(sexprOf("from subprocess import Popen, PIPE\n"),
            "(Module (ImportFrom (module subprocess) (alias Popen) (alias "
            "PIPE)))");
}

TEST(PyParser, InlineSuite) {
  EXPECT_EQ(sexprOf("if x: y = 1\n"),
            "(Module (If (Name x) (Body (Assign (Name y) (Num 1)))))");
}

TEST(PyParser, BracketsAllowMultilineCalls) {
  EXPECT_EQ(sexprOf("r = f(a,\n      b)\n"),
            "(Module (Assign (Name r) (Call (Name f) (Name a) (Name b))))");
}

TEST(PyParser, CommentsIgnored) {
  EXPECT_EQ(sexprOf("# header\nx = 1  # trailing\n"),
            "(Module (Assign (Name x) (Num 1)))");
}

TEST(PyParser, ChainedAssignment) {
  EXPECT_EQ(sexprOf("a = b = 1\n"),
            "(Module (Assign (Name a) (Name b) (Num 1)))");
}

//===----------------------------------------------------------------------===//
// Element linking
//===----------------------------------------------------------------------===//

TEST(PyParserElements, AssignedNamesBecomeLocals) {
  StringInterner SI;
  lang::ParseResult R =
      py::parse("def f(c):\n    r = c + 1\n    return r\n", SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  for (ElementId E = 0; E < T.elements().size(); ++E) {
    const ElementInfo &Info = T.element(E);
    if (SI.str(Info.Name) == "r") {
      EXPECT_EQ(Info.Kind, ElementKind::LocalVar);
      EXPECT_TRUE(Info.Predictable);
      EXPECT_EQ(T.occurrences(E).size(), 2u);
    }
    if (SI.str(Info.Name) == "c") {
      EXPECT_EQ(Info.Kind, ElementKind::Parameter);
      EXPECT_TRUE(Info.Predictable);
    }
  }
}

TEST(PyParserElements, SelfIsNotPredictable) {
  StringInterner SI;
  lang::ParseResult R = py::parse(
      "class A:\n    def m(self):\n        return self\n", SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  for (ElementId E = 0; E < T.elements().size(); ++E)
    if (SI.str(T.element(E).Name) == "self") {
      EXPECT_FALSE(T.element(E).Predictable);
    }
}

TEST(PyParserElements, UnresolvedCalleeIsKnownFunction) {
  StringInterner SI;
  lang::ParseResult R = py::parse("x = len(items)\n", SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  for (ElementId E = 0; E < T.elements().size(); ++E) {
    const ElementInfo &Info = T.element(E);
    if (SI.str(Info.Name) == "len") {
      EXPECT_EQ(Info.Kind, ElementKind::Method);
      EXPECT_FALSE(Info.Predictable);
    }
    if (SI.str(Info.Name) == "items") {
      EXPECT_FALSE(Info.Predictable) << "unresolved read is a known global";
    }
  }
}

TEST(PyParserElements, SelfAttrLinksAcrossMethods) {
  StringInterner SI;
  lang::ParseResult R = py::parse("class A:\n"
                                  "    def set(self, v):\n"
                                  "        self.value = v\n"
                                  "    def get(self):\n"
                                  "        return self.value\n",
                                  SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  for (ElementId E = 0; E < T.elements().size(); ++E) {
    if (SI.str(T.element(E).Name) != "value")
      continue;
    EXPECT_EQ(T.element(E).Kind, ElementKind::Field);
    EXPECT_EQ(T.occurrences(E).size(), 2u)
        << "self.value write and read must merge";
  }
}

TEST(PyParserElements, ModuleFunctionCallLinksToDef) {
  StringInterner SI;
  lang::ParseResult R =
      py::parse("def helper():\n    return 1\nx = helper()\n", SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  for (ElementId E = 0; E < T.elements().size(); ++E)
    if (SI.str(T.element(E).Name) == "helper") {
      EXPECT_EQ(T.occurrences(E).size(), 2u);
    }
}

TEST(PyParserElements, FunctionScopesAreIsolated) {
  StringInterner SI;
  lang::ParseResult R = py::parse(
      "def f():\n    x = 1\n    return x\ndef g():\n    x = 2\n    return "
      "x\n",
      SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  int XCount = 0;
  for (ElementId E = 0; E < T.elements().size(); ++E)
    if (SI.str(T.element(E).Name) == "x")
      ++XCount;
  EXPECT_EQ(XCount, 2) << "x in f and x in g are distinct elements";
}

//===----------------------------------------------------------------------===//
// Error handling
//===----------------------------------------------------------------------===//

TEST(PyParserErrors, MissingColonDiagnosed) {
  StringInterner SI;
  lang::ParseResult R = py::parse("if x\n    y = 1\n", SI);
  EXPECT_FALSE(R.Diags.empty());
}

TEST(PyParserErrors, BadIndentationDiagnosed) {
  StringInterner SI;
  lang::ParseResult R = py::parse("if x:\n        y = 1\n   z = 2\n", SI);
  EXPECT_FALSE(R.Diags.empty());
}

TEST(PyParserErrors, GarbageTerminates) {
  StringInterner SI;
  lang::ParseResult R = py::parse("&& ^^ ~~\n", SI);
  ASSERT_TRUE(R.Tree.has_value());
  EXPECT_FALSE(R.Diags.empty());
}

} // namespace
