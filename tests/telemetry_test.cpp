//===- telemetry_test.cpp - Unit tests for support/Telemetry ---------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include "support/Json.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

using namespace pigeon;
using namespace pigeon::telemetry;

//===----------------------------------------------------------------------===//
// Counter / Gauge
//===----------------------------------------------------------------------===//

TEST(Counter, IncAndAdd) {
  Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  C.resetValue();
  EXPECT_EQ(C.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
  Gauge G;
  EXPECT_EQ(G.value(), 0.0);
  G.set(2.5);
  EXPECT_EQ(G.value(), 2.5);
  G.add(-1.0);
  EXPECT_EQ(G.value(), 1.5);
  G.set(7.0); // set overwrites, add accumulates
  EXPECT_EQ(G.value(), 7.0);
}

TEST(Registry, FindOrCreateReturnsStableHandles) {
  MetricsRegistry Reg;
  Counter &A = Reg.counter("parse.files.ok");
  Counter &B = Reg.counter("parse.files.ok");
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(Reg.numCounters(), 1u);

  Gauge &G1 = Reg.gauge("crf.features");
  Gauge &G2 = Reg.gauge("crf.features");
  EXPECT_EQ(&G1, &G2);

  Histogram &H1 = Reg.histogram("paths.length", linearBounds(1, 4));
  Histogram &H2 = Reg.histogram("paths.length", linearBounds(1, 99));
  EXPECT_EQ(&H1, &H2); // later bounds are ignored
  EXPECT_EQ(H1.buckets().size(), 5u);
}

TEST(Registry, ResetZeroesButKeepsHandlesValid) {
  MetricsRegistry Reg;
  Counter &C = Reg.counter("c");
  Gauge &G = Reg.gauge("g");
  Histogram &H = Reg.histogram("h", {1.0, 2.0});
  C.add(10);
  G.set(3.5);
  H.observe(1.5);
  Reg.reset();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(G.value(), 0.0);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(Reg.traceRoot().Children.size(), 0u);
  // The same references still work after reset.
  C.inc();
  EXPECT_EQ(Reg.counter("c").value(), 1u);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(Histogram, CountSumMinMax) {
  Histogram H(linearBounds(0, 10));
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0.0);
  EXPECT_EQ(H.max(), 0.0);
  for (double X : {3.0, 7.0, 1.0, 9.0})
    H.observe(X);
  EXPECT_EQ(H.count(), 4u);
  EXPECT_DOUBLE_EQ(H.sum(), 20.0);
  EXPECT_EQ(H.min(), 1.0);
  EXPECT_EQ(H.max(), 9.0);
}

TEST(Histogram, OverflowBucketCatchesLargeValues) {
  Histogram H({1.0, 2.0});
  H.observe(0.5);
  H.observe(1.5);
  H.observe(100.0);
  std::vector<Histogram::Bucket> B = H.buckets();
  ASSERT_EQ(B.size(), 3u);
  EXPECT_EQ(B[0].Count, 1u);
  EXPECT_EQ(B[1].Count, 1u);
  EXPECT_EQ(B[2].Count, 1u); // overflow
  EXPECT_TRUE(std::isinf(B[2].UpperBound));
}

TEST(Histogram, ObserveNMatchesRepeatedObserve) {
  Histogram A(linearBounds(0, 4));
  Histogram B(linearBounds(0, 4));
  for (int I = 0; I < 7; ++I)
    A.observe(2.0);
  A.observe(9.0); // overflow
  B.observeN(2.0, 7);
  B.observeN(9.0, 1);
  B.observeN(5.0, 0); // no-op
  EXPECT_EQ(A.count(), B.count());
  EXPECT_DOUBLE_EQ(A.sum(), B.sum());
  EXPECT_EQ(A.min(), B.min());
  EXPECT_EQ(A.max(), B.max());
  std::vector<Histogram::Bucket> BA = A.buckets(), BB = B.buckets();
  ASSERT_EQ(BA.size(), BB.size());
  for (size_t I = 0; I < BA.size(); ++I)
    EXPECT_EQ(BA[I].Count, BB[I].Count);
}

TEST(Histogram, PercentilesOnUniformDistribution) {
  // 100 observations 1..100 into unit buckets: percentiles should land
  // within one bucket width of the exact order statistic.
  Histogram H(linearBounds(1, 100));
  for (int I = 1; I <= 100; ++I)
    H.observe(static_cast<double>(I));
  EXPECT_NEAR(H.percentile(0.50), 50.0, 1.5);
  EXPECT_NEAR(H.percentile(0.90), 90.0, 1.5);
  EXPECT_NEAR(H.percentile(0.99), 99.0, 1.5);
  // Extremes clamp to the observed range.
  EXPECT_GE(H.percentile(0.0), 1.0);
  EXPECT_LE(H.percentile(1.0), 100.0);
}

TEST(Histogram, PercentileSinglePointDistribution) {
  Histogram H(timeBounds());
  for (int I = 0; I < 10; ++I)
    H.observe(0.002);
  // Every percentile of a constant distribution is that constant (the
  // estimate is clamped to [min, max]).
  EXPECT_DOUBLE_EQ(H.percentile(0.5), 0.002);
  EXPECT_DOUBLE_EQ(H.percentile(0.99), 0.002);
}

TEST(Histogram, PercentileOnEmptyIsNaN) {
  Histogram H(linearBounds(0, 4));
  EXPECT_TRUE(std::isnan(H.percentile(0.5)));
  EXPECT_TRUE(std::isnan(H.percentile(0.99)));
  // min()/max() keep their documented 0.0-on-empty behavior; only the
  // quantile estimate (and the JSON emission) distinguish "empty".
  EXPECT_EQ(H.min(), 0.0);
  EXPECT_EQ(H.max(), 0.0);
}

TEST(Histogram, ConcurrentObserves) {
  MetricsRegistry Reg;
  Histogram &H = Reg.histogram("h", linearBounds(0, 8));
  Counter &C = Reg.counter("c");
  constexpr int Threads = 8, PerThread = 10000;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      for (int I = 0; I < PerThread; ++I) {
        H.observe(static_cast<double>((T + I) % 8));
        C.inc();
      }
    });
  for (std::thread &Th : Pool)
    Th.join();
  EXPECT_EQ(C.value(), static_cast<uint64_t>(Threads) * PerThread);
  EXPECT_EQ(H.count(), static_cast<uint64_t>(Threads) * PerThread);
  uint64_t BucketTotal = 0;
  for (const Histogram::Bucket &B : H.buckets())
    BucketTotal += B.Count;
  EXPECT_EQ(BucketTotal, H.count());
}

//===----------------------------------------------------------------------===//
// Trace tree
//===----------------------------------------------------------------------===//

TEST(TraceScope, NestsIntoTree) {
  MetricsRegistry Reg;
  {
    TraceScope Train(Reg, "train");
    { TraceScope Extract(Reg, "extract"); }
    { TraceScope Epoch(Reg, "epoch"); }
  }
  { TraceScope Eval(Reg, "eval"); }

  const TraceNode &Root = Reg.traceRoot();
  ASSERT_EQ(Root.Children.size(), 2u);
  EXPECT_EQ(Root.Children[0]->Name, "train");
  EXPECT_EQ(Root.Children[1]->Name, "eval");
  const TraceNode &Train = *Root.Children[0];
  ASSERT_EQ(Train.Children.size(), 2u);
  EXPECT_EQ(Train.Children[0]->Name, "extract");
  EXPECT_EQ(Train.Children[1]->Name, "epoch");
  EXPECT_EQ(Train.Calls, 1u);
  EXPECT_GE(Train.Seconds, 0.0);
}

TEST(TraceScope, RepeatedPhasesMergeByName) {
  MetricsRegistry Reg;
  for (int I = 0; I < 5; ++I) {
    TraceScope Epoch(Reg, "epoch");
  }
  const TraceNode &Root = Reg.traceRoot();
  ASSERT_EQ(Root.Children.size(), 1u);
  EXPECT_EQ(Root.Children[0]->Name, "epoch");
  EXPECT_EQ(Root.Children[0]->Calls, 5u);
}

TEST(TraceScope, SecondsIsReadableMidScope) {
  MetricsRegistry Reg;
  TraceScope Phase(Reg, "sleep");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(Phase.seconds(), 0.004);
}

TEST(TraceScope, ChildSecondsBoundedByParent) {
  MetricsRegistry Reg;
  {
    TraceScope Outer(Reg, "outer");
    TraceScope Inner(Reg, "inner");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const TraceNode &Root = Reg.traceRoot();
  ASSERT_EQ(Root.Children.size(), 1u);
  const TraceNode &Outer = *Root.Children[0];
  ASSERT_EQ(Outer.Children.size(), 1u);
  EXPECT_LE(Outer.Children[0]->Seconds, Outer.Seconds + 1e-9);
}

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

TEST(Json, EscapeSpecialCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

namespace {
/// Minimal structural validator: checks balanced braces/brackets outside
/// strings and that escapes inside strings are legal.
bool isStructurallyValidJson(const std::string &S) {
  int Depth = 0;
  bool InString = false;
  for (size_t I = 0; I < S.size(); ++I) {
    char C = S[I];
    if (InString) {
      if (C == '\\') {
        if (I + 1 >= S.size())
          return false;
        char N = S[I + 1];
        if (N != '"' && N != '\\' && N != '/' && N != 'b' && N != 'f' &&
            N != 'n' && N != 'r' && N != 't' && N != 'u')
          return false;
        ++I;
      } else if (C == '"') {
        InString = false;
      } else if (static_cast<unsigned char>(C) < 0x20) {
        return false; // raw control char inside a string
      }
    } else {
      if (C == '"')
        InString = true;
      else if (C == '{' || C == '[')
        ++Depth;
      else if (C == '}' || C == ']') {
        if (--Depth < 0)
          return false;
      }
    }
  }
  return Depth == 0 && !InString;
}
} // namespace

TEST(Json, SnapshotIsStructurallyValidAndStable) {
  MetricsRegistry Reg;
  Reg.counter("parse.files.ok").add(3);
  Reg.counter("parse.fail.reason.expected \"}\"\nbefore end").inc();
  Reg.gauge("crf.features").set(1234.5);
  Histogram &H = Reg.histogram("paths.length", linearBounds(1, 4));
  H.observe(2);
  H.observe(3);
  {
    TraceScope Train(Reg, "train");
    TraceScope Extract(Reg, "extract");
  }

  std::ostringstream A, B;
  Reg.writeJson(A);
  Reg.writeJson(B);
  EXPECT_EQ(A.str(), B.str()); // stable output
  EXPECT_TRUE(isStructurallyValidJson(A.str()));
  EXPECT_NE(A.str().find("\"schema\":\"pigeon.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(A.str().find("\"parse.files.ok\":3"), std::string::npos);
  EXPECT_NE(A.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(A.str().find("\"gauges\""), std::string::npos);
  EXPECT_NE(A.str().find("\"histograms\""), std::string::npos);
  EXPECT_NE(A.str().find("\"trace\""), std::string::npos);
  EXPECT_NE(A.str().find("\"p50\""), std::string::npos);
}

TEST(Json, NonFiniteAndEmptyValuesSerializeAsNull) {
  MetricsRegistry Reg;
  Reg.gauge("speedup").set(std::numeric_limits<double>::quiet_NaN());
  Reg.gauge("ratio").set(std::numeric_limits<double>::infinity());
  Reg.histogram("idle.wall.seconds", timeBounds()); // never observed
  std::ostringstream OS;
  Reg.writeJson(OS);
  std::string S = OS.str();
  EXPECT_TRUE(isStructurallyValidJson(S));
  // Bare NaN / Infinity are not JSON; they must degrade to null.
  EXPECT_NE(S.find("\"speedup\":null"), std::string::npos);
  EXPECT_NE(S.find("\"ratio\":null"), std::string::npos);
  // An empty histogram has no meaningful min/percentiles — null, not a
  // fake zero a reader would mistake for a measurement.
  EXPECT_NE(S.find("\"min\":null"), std::string::npos);
  EXPECT_NE(S.find("\"p50\":null"), std::string::npos);
  // The whole snapshot must still satisfy the strict parser.
  std::string Error;
  EXPECT_TRUE(json::parse(S, &Error).has_value()) << Error;
}

TEST(Json, EmptyRegistrySnapshot) {
  MetricsRegistry Reg;
  std::ostringstream OS;
  Reg.writeJson(OS);
  EXPECT_TRUE(isStructurallyValidJson(OS.str()));
  EXPECT_NE(OS.str().find("pigeon.metrics.v1"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Tables
//===----------------------------------------------------------------------===//

TEST(Tables, PrintTableAndTraceTableRender) {
  MetricsRegistry Reg;
  Reg.counter("parse.files.ok").add(7);
  Reg.histogram("paths.length", linearBounds(1, 4)).observe(2);
  {
    TraceScope Train(Reg, "train");
    TraceScope Extract(Reg, "extract");
  }
  std::ostringstream OS;
  Reg.printTable(OS);
  Reg.printTraceTable(OS);
  EXPECT_NE(OS.str().find("parse.files.ok"), std::string::npos);
  EXPECT_NE(OS.str().find("train"), std::string::npos);
  EXPECT_NE(OS.str().find("extract"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Prometheus exposition
//===----------------------------------------------------------------------===//

namespace {

/// True when \p Name matches the Prometheus metric-name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
bool isPromName(const std::string &Name) {
  if (Name.empty())
    return false;
  for (size_t I = 0; I < Name.size(); ++I) {
    char Ch = Name[I];
    bool Alpha = (Ch >= 'a' && Ch <= 'z') || (Ch >= 'A' && Ch <= 'Z') ||
                 Ch == '_' || Ch == ':';
    bool Digit = Ch >= '0' && Ch <= '9';
    if (!(Alpha || (Digit && I > 0)))
      return false;
  }
  return true;
}

/// True when \p Value is a legal exposition-format sample value: the
/// non-finite spellings or a fully-consumed decimal.
bool isPromValue(const std::string &Value) {
  if (Value == "NaN" || Value == "+Inf" || Value == "-Inf")
    return true;
  if (Value.empty())
    return false;
  char *End = nullptr;
  std::strtod(Value.c_str(), &End);
  return End && *End == '\0';
}

/// Line-by-line grammar check of an exposition document: every line is a
/// `# HELP` / `# TYPE` comment or `name[{labels}] value`.
::testing::AssertionResult isValidExposition(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;
  int N = 0;
  while (std::getline(In, Line)) {
    ++N;
    if (Line.rfind("# HELP ", 0) == 0 || Line.rfind("# TYPE ", 0) == 0)
      continue;
    if (Line.rfind("#", 0) == 0)
      return ::testing::AssertionFailure()
             << "line " << N << ": unknown comment form: " << Line;
    size_t Space = Line.rfind(' ');
    if (Space == std::string::npos || Space == 0)
      return ::testing::AssertionFailure()
             << "line " << N << ": no value separator: " << Line;
    std::string Series = Line.substr(0, Space);
    std::string Value = Line.substr(Space + 1);
    std::string Name = Series;
    size_t Brace = Series.find('{');
    if (Brace != std::string::npos) {
      if (Series.back() != '}')
        return ::testing::AssertionFailure()
               << "line " << N << ": unterminated labels: " << Line;
      Name = Series.substr(0, Brace);
      std::string Labels = Series.substr(Brace + 1,
                                         Series.size() - Brace - 2);
      // Each label is name="value" with escaped quotes inside.
      if (Labels.find('=') == std::string::npos)
        return ::testing::AssertionFailure()
               << "line " << N << ": malformed labels: " << Line;
    }
    if (!isPromName(Name))
      return ::testing::AssertionFailure()
             << "line " << N << ": bad metric name: " << Line;
    if (!isPromValue(Value))
      return ::testing::AssertionFailure()
             << "line " << N << ": bad sample value: " << Line;
  }
  return ::testing::AssertionSuccess();
}

} // namespace

TEST(Prometheus, MetricNameSanitization) {
  EXPECT_EQ(promMetricName("serve.request.seconds"),
            "serve_request_seconds");
  EXPECT_EQ(promMetricName("already_fine"), "already_fine");
  EXPECT_EQ(promMetricName("name:with:colons"), "name:with:colons");
  EXPECT_EQ(promMetricName("weird-name+x"), "weird_name_x");
  EXPECT_EQ(promMetricName("9lives"), "_9lives"); // No leading digit.
  EXPECT_EQ(promMetricName(""), "_");
}

TEST(Prometheus, LabelEscaping) {
  EXPECT_EQ(promEscapeLabel("plain"), "plain");
  EXPECT_EQ(promEscapeLabel("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(promEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(promEscapeLabel("line\nbreak"), "line\\nbreak");
}

TEST(Prometheus, CountersGetTotalSuffixExactlyOnce) {
  MetricsRegistry Reg;
  Reg.counter("serve.requests").add(5);
  Reg.counter("bytes.total").add(7); // Sanitizes to an existing _total.
  std::string S = Reg.prometheusSnapshot();
  EXPECT_NE(S.find("serve_requests_total 5\n"), std::string::npos);
  EXPECT_NE(S.find("# TYPE serve_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(S.find("bytes_total 7\n"), std::string::npos);
  EXPECT_EQ(S.find("bytes_total_total"), std::string::npos);
}

TEST(Prometheus, HistogramBucketsAreCumulative) {
  MetricsRegistry Reg;
  Histogram &H = Reg.histogram("paths.length", linearBounds(1, 3));
  H.observe(0.5); // le=1
  H.observe(1.5); // le=2
  H.observe(2.5); // le=3
  H.observe(99);  // overflow
  std::string S = Reg.prometheusSnapshot();
  EXPECT_NE(S.find("# TYPE paths_length histogram\n"), std::string::npos);
  EXPECT_NE(S.find("paths_length_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(S.find("paths_length_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(S.find("paths_length_bucket{le=\"3\"} 3\n"), std::string::npos);
  // The +Inf bucket is cumulative over everything and equals _count.
  EXPECT_NE(S.find("paths_length_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(S.find("paths_length_count 4\n"), std::string::npos);
  EXPECT_NE(S.find("paths_length_sum "), std::string::npos);
}

TEST(Prometheus, WindowedExportsAsSummaryWithRate) {
  MetricsRegistry Reg;
  WindowedHistogram &W =
      Reg.windowed("serve.request.seconds", linearBounds(1, 4), 3, 10.0);
  W.observeAt(5.0, 2.0);
  std::string S = Reg.prometheusSnapshot();
  EXPECT_NE(S.find("# TYPE serve_request_seconds_window summary\n"),
            std::string::npos);
  EXPECT_NE(S.find("serve_request_seconds_window{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(S.find("serve_request_seconds_window{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(S.find("serve_request_seconds_window_count "),
            std::string::npos);
  EXPECT_NE(S.find("serve_request_seconds_window_rate_per_sec "),
            std::string::npos);
  EXPECT_TRUE(isValidExposition(S));
}

TEST(Prometheus, NonFiniteValuesUseExpositionSpellings) {
  MetricsRegistry Reg;
  Reg.gauge("nan.gauge").set(std::numeric_limits<double>::quiet_NaN());
  Reg.gauge("inf.gauge").set(std::numeric_limits<double>::infinity());
  // An empty window has NaN percentiles — legal exposition values.
  Reg.windowed("empty.window", linearBounds(1, 2));
  std::string S = Reg.prometheusSnapshot();
  EXPECT_NE(S.find("nan_gauge NaN\n"), std::string::npos);
  EXPECT_NE(S.find("inf_gauge +Inf\n"), std::string::npos);
  EXPECT_NE(S.find("empty_window_window{quantile=\"0.99\"} NaN\n"),
            std::string::npos);
  EXPECT_TRUE(isValidExposition(S));
}

TEST(Prometheus, FullSnapshotPassesGrammarCheckAndIsStable) {
  MetricsRegistry Reg;
  Reg.counter("parse.files.ok").add(3);
  Reg.gauge("crf.features").set(1234.5);
  Histogram &H = Reg.histogram("paths.length", linearBounds(1, 4));
  H.observe(2);
  Reg.windowed("serve.request.seconds", timeBounds()).observeAt(1.0, 0.01);
  std::string A = Reg.prometheusSnapshot();
  std::string B = Reg.prometheusSnapshot();
  EXPECT_EQ(A, B);
  EXPECT_TRUE(isValidExposition(A));
  // Every series carries HELP/TYPE headers.
  EXPECT_NE(A.find("# HELP parse_files_ok_total "), std::string::npos);
  EXPECT_NE(A.find("# HELP crf_features "), std::string::npos);
  EXPECT_NE(A.find("# TYPE crf_features gauge\n"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Atomic file writes
//===----------------------------------------------------------------------===//

TEST(Files, WriteFileAtomicWritesAndReplaces) {
  const std::string Path = "telemetry_test_atomic.tmp.json";
  ASSERT_TRUE(writeFileAtomic(Path, "first\n"));
  {
    std::ifstream In(Path, std::ios::binary);
    std::stringstream Buf;
    Buf << In.rdbuf();
    EXPECT_EQ(Buf.str(), "first\n");
  }
  // No stray staging file is left behind.
  EXPECT_FALSE(std::ifstream(Path + ".tmp").good());
  // Replacement is in-place and complete.
  ASSERT_TRUE(writeFileAtomic(Path, "second\n"));
  {
    std::ifstream In(Path, std::ios::binary);
    std::stringstream Buf;
    Buf << In.rdbuf();
    EXPECT_EQ(Buf.str(), "second\n");
  }
  std::remove(Path.c_str());
}

TEST(Files, WriteFileAtomicFailsCleanlyOnBadPath) {
  EXPECT_FALSE(writeFileAtomic("/nonexistent-dir/sub/metrics.json", "x"));
}
