//===- binaryio_test.cpp - Unit tests for the binary IO codecs -------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/BinaryIO.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

using namespace pigeon;

namespace {

TEST(BinaryIOVarint, RoundTripsBoundaryValues) {
  const uint64_t Values[] = {0,
                             1,
                             127,
                             128,
                             129,
                             16383,
                             16384,
                             std::numeric_limits<uint32_t>::max(),
                             uint64_t(1) << 35,
                             std::numeric_limits<uint64_t>::max()};
  std::stringstream Buffer;
  for (uint64_t V : Values)
    io::writeVarint(Buffer, V);
  for (uint64_t V : Values) {
    uint64_t Read = 0;
    ASSERT_TRUE(io::readVarint(Buffer, Read));
    EXPECT_EQ(Read, V);
  }
  uint64_t Extra = 0;
  EXPECT_FALSE(io::readVarint(Buffer, Extra)); // Stream exhausted.
}

TEST(BinaryIOVarint, SmallValuesAreOneByte) {
  std::stringstream Buffer;
  io::writeVarint(Buffer, 127);
  EXPECT_EQ(Buffer.str().size(), 1u);
  io::writeVarint(Buffer, 128);
  EXPECT_EQ(Buffer.str().size(), 3u); // 128 needs two bytes.
}

TEST(BinaryIOVarint, RejectsOverlongEncoding) {
  // Eleven continuation bytes: more than any uint64 needs.
  std::string Bytes(11, char(0x80));
  std::stringstream Buffer(Bytes);
  uint64_t Value = 0;
  EXPECT_FALSE(io::readVarint(Buffer, Value));
}

TEST(BinaryIOVarint, RejectsTruncatedEncoding) {
  std::stringstream Buffer;
  Buffer.put(char(0x80)); // Continuation bit set, then EOF.
  uint64_t Value = 0;
  EXPECT_FALSE(io::readVarint(Buffer, Value));
}

TEST(BinaryIOBytes, RoundTripsIncludingEmpty) {
  std::stringstream Buffer;
  std::vector<uint8_t> Empty;
  std::vector<uint8_t> Data = {0, 1, 2, 0xFF, 0x80, 42};
  io::writeBytes(Buffer, Empty);
  io::writeBytes(Buffer, Data);
  std::vector<uint8_t> Out = {9, 9, 9};
  ASSERT_TRUE(io::readBytes(Buffer, Out));
  EXPECT_TRUE(Out.empty()); // Replaces previous contents.
  ASSERT_TRUE(io::readBytes(Buffer, Out));
  EXPECT_EQ(Out, Data);
}

TEST(BinaryIOBytes, RejectsLengthBeyondMax) {
  std::stringstream Buffer;
  io::writeVarint(Buffer, 1000);
  Buffer << "short";
  std::vector<uint8_t> Out;
  EXPECT_FALSE(io::readBytes(Buffer, Out, /*MaxSize=*/100));
}

TEST(BinaryIOBytes, RejectsTruncatedPayload) {
  std::stringstream Buffer;
  io::writeVarint(Buffer, 8);
  Buffer << "abc"; // Only 3 of the promised 8 bytes.
  std::vector<uint8_t> Out;
  EXPECT_FALSE(io::readBytes(Buffer, Out));
}

TEST(BinaryIOString, RoundTrips) {
  std::stringstream Buffer;
  io::writeString(Buffer, "");
  io::writeString(Buffer, "hello");
  io::writeString(Buffer, std::string("with\0nul", 8));
  std::string Out = "stale";
  ASSERT_TRUE(io::readString(Buffer, Out));
  EXPECT_EQ(Out, "");
  ASSERT_TRUE(io::readString(Buffer, Out));
  EXPECT_EQ(Out, "hello");
  ASSERT_TRUE(io::readString(Buffer, Out));
  EXPECT_EQ(Out, std::string("with\0nul", 8));
}

TEST(BinaryIOAppend, MatchesStreamEncoding) {
  // The buffer codec and the stream codec must agree byte for byte: the
  // packed path table is written to disk through writeBytes and decoded
  // with ByteReader.
  const uint32_t Values[] = {0, 1, 127, 128, 300, 0xFFFF,
                             std::numeric_limits<uint32_t>::max()};
  for (uint32_t V : Values) {
    std::vector<uint8_t> Buf;
    io::appendVarint(Buf, V);
    std::stringstream Stream;
    io::writeVarint(Stream, V);
    std::string Expected = Stream.str();
    ASSERT_EQ(Buf.size(), Expected.size()) << V;
    for (size_t I = 0; I < Buf.size(); ++I)
      EXPECT_EQ(Buf[I], static_cast<uint8_t>(Expected[I])) << V;
  }
}

TEST(BinaryIOByteReader, ReadsSequentially) {
  std::vector<uint8_t> Buf;
  io::appendVarint(Buf, 7);
  io::appendVarint(Buf, 300);
  Buf.push_back(0xAB);
  io::ByteReader R(Buf);
  uint32_t V = 0;
  ASSERT_TRUE(R.readVarint(V));
  EXPECT_EQ(V, 7u);
  ASSERT_TRUE(R.readVarint(V));
  EXPECT_EQ(V, 300u);
  uint8_t B = 0;
  ASSERT_TRUE(R.readByte(B));
  EXPECT_EQ(B, 0xAB);
  EXPECT_TRUE(R.atEnd());
  EXPECT_FALSE(R.readByte(B));
  EXPECT_FALSE(R.readVarint(V));
}

TEST(BinaryIOByteReader, RejectsOverlongAndTruncated) {
  std::vector<uint8_t> Overlong(6, 0x80); // Six continuation bytes > 35 bits.
  io::ByteReader R1(Overlong);
  uint32_t V = 0;
  EXPECT_FALSE(R1.readVarint(V));

  std::vector<uint8_t> Truncated = {0x80};
  io::ByteReader R2(Truncated);
  EXPECT_FALSE(R2.readVarint(V));
}

TEST(BinaryIOByteReader, RejectsFifthByteAboveUint32Range) {
  // Adversarial: a 5th byte with payload bits above 2^32. A pre-fix
  // reader shifted them past bit 31 and silently dropped them, decoding
  // {FF FF FF FF 7F} to the same value as {FF FF FF FF 0F} — two distinct
  // byte strings aliasing one value, which breaks equality-by-bytes
  // artifacts (packed paths compare by bytes).
  std::vector<uint8_t> HighBits = {0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  io::ByteReader R1(HighBits);
  uint32_t V = 0;
  EXPECT_FALSE(R1.readVarint(V));

  std::vector<uint8_t> OneHighBit = {0x80, 0x80, 0x80, 0x80, 0x10};
  io::ByteReader R2(OneHighBit);
  EXPECT_FALSE(R2.readVarint(V));

  // The canonical 5-byte maximum still decodes.
  std::vector<uint8_t> Max = {0xFF, 0xFF, 0xFF, 0xFF, 0x0F};
  io::ByteReader R3(Max);
  ASSERT_TRUE(R3.readVarint(V));
  EXPECT_EQ(V, std::numeric_limits<uint32_t>::max());
  EXPECT_TRUE(R3.atEnd());
}

TEST(BinaryIOByteReader, RejectsSixByteEncodingEvenWhenValueFits) {
  // 6 bytes whose 6th terminates: more bytes than any uint32 needs. The
  // 5th byte's continuation bit alone must reject it.
  std::vector<uint8_t> Six = {0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
  io::ByteReader R(Six);
  uint32_t V = 0;
  EXPECT_FALSE(R.readVarint(V));
}

TEST(BinaryIOByteReader, AppendedMaxValuesRoundTrip) {
  // appendVarint output is always canonical; every boundary value must
  // survive the stricter reader.
  const uint32_t Values[] = {0, 127, 128, (1u << 28) - 1, 1u << 28,
                             std::numeric_limits<uint32_t>::max()};
  for (uint32_t Val : Values) {
    std::vector<uint8_t> Buf;
    io::appendVarint(Buf, Val);
    io::ByteReader R(Buf);
    uint32_t Out = 0;
    ASSERT_TRUE(R.readVarint(Out)) << Val;
    EXPECT_EQ(Out, Val);
    EXPECT_TRUE(R.atEnd());
  }
}

TEST(BinaryIOCheckedAdd, SumsInRange) {
  uint64_t Out = 0;
  EXPECT_TRUE(io::checkedAdd(0, 0, Out));
  EXPECT_EQ(Out, 0u);
  EXPECT_TRUE(io::checkedAdd(UINT64_MAX - 1, 1, Out));
  EXPECT_EQ(Out, UINT64_MAX);
  EXPECT_TRUE(io::checkedAdd(1u << 20, 1u << 20, Out));
  EXPECT_EQ(Out, 2u << 20);
}

TEST(BinaryIOCheckedAdd, WrapFailsAndLeavesOutUntouched) {
  // A crafted section offset near 2^64 plus a length wraps below the
  // start; the checked add must refuse instead of producing a sum that
  // slips under an `end <= size` bound.
  uint64_t Out = 42;
  EXPECT_FALSE(io::checkedAdd(UINT64_MAX, 1, Out));
  EXPECT_FALSE(io::checkedAdd(UINT64_MAX - 7, 64, Out));
  EXPECT_FALSE(io::checkedAdd(UINT64_MAX / 2 + 1, UINT64_MAX / 2 + 1, Out));
  EXPECT_EQ(Out, 42u);
}

} // namespace
