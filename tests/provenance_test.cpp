//===- provenance_test.cpp - Prediction provenance invariants --------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Pins the contract that makes `pigeon explain` trustworthy: an
/// explanation *is* the score — CrfModel::explain's Total equals the
/// topK() score of the same (node, label) exactly, Sgns::explain's
/// contributions sum to the Eq. 4 score exactly, and the attribution
/// records written into the event stream round-trip through the JSON
/// parser carrying the same numbers the report prints.
///
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include "lang/js/JsParser.h"
#include "ml/word2vec/Sgns.h"
#include "support/EventLog.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

using namespace pigeon;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

/// Trained name-prediction CRF over a few handwritten files sharing one
/// interner/table, plus a held-out graph to explain.
struct SmallCrf {
  StringInterner SI;
  paths::PathTable Table;
  std::vector<std::optional<ast::Tree>> Trees;
  std::vector<crf::CrfGraph> Graphs;
  crf::CrfModel Model;

  SmallCrf() {
    const char *Sources[] = {
        "function f(items) { for (var i = 0; i < items.length; i++) {"
        " use(items[i]); } }",
        "function g(items) { for (var j = 0; j < items.length; j++) {"
        " use(items[j]); } }",
        "var done = false; while (!done) { done = step(); }",
        "var count = 0; count = count + 1; use(count);",
    };
    crf::ElementSelector Selector = [](const ast::ElementInfo &Info) {
      return Info.Predictable &&
             (Info.Kind == ast::ElementKind::LocalVar ||
              Info.Kind == ast::ElementKind::Parameter);
    };
    for (const char *Src : Sources) {
      lang::ParseResult R = js::parse(Src, SI);
      EXPECT_TRUE(R.ok()) << Src;
      Trees.push_back(std::move(R.Tree));
      auto Contexts =
          paths::extractPathContexts(*Trees.back(), {}, Table);
      Graphs.push_back(crf::buildGraph(*Trees.back(), Contexts, Selector));
    }
    Model.train(Graphs);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// CRF explanation invariant
//===----------------------------------------------------------------------===//

TEST(CrfExplain, TotalEqualsTopKScoreForEveryCandidate) {
  SmallCrf S;
  size_t Checked = 0;
  for (const crf::CrfGraph &G : S.Graphs) {
    std::vector<Symbol> Assignment = S.Model.predict(G);
    for (uint32_t N : G.Unknowns) {
      for (const auto &[Label, Score] : S.Model.topK(G, N, Assignment, 5)) {
        crf::NodeExplanation Ex =
            S.Model.explain(G, N, Label, Assignment, /*K=*/0);
        EXPECT_EQ(Ex.Label, Label);
        // The decomposition reproduces the scorer bit-for-bit-ish: same
        // gates, same vote smoothing, so only summation-order epsilon.
        EXPECT_NEAR(Ex.Total, Score, 1e-9) << S.SI.str(Label);
        // The model was built with the default config (VotePrior = 1).
        const double VotePrior = crf::CrfConfig().VotePrior;
        double PathSum = 0;
        for (const crf::Attribution &A : Ex.Paths) {
          PathSum += A.Score;
          EXPECT_NEAR(A.Score, VotePrior * A.Vote + A.Weight, 1e-12);
          EXPECT_NE(A.Path, paths::InvalidPath);
        }
        EXPECT_NEAR(Ex.Total, Ex.Bias + PathSum, 1e-9);
        ++Checked;
      }
    }
  }
  EXPECT_GT(Checked, 0u);
}

TEST(CrfExplain, TruncationKeepsTotalAndOrdersByMagnitude) {
  SmallCrf S;
  const crf::CrfGraph &G = S.Graphs.front();
  ASSERT_FALSE(G.Unknowns.empty());
  uint32_t N = G.Unknowns.front();
  std::vector<Symbol> Assignment = S.Model.predict(G);
  auto Top = S.Model.topK(G, N, Assignment, 1);
  ASSERT_FALSE(Top.empty());

  crf::NodeExplanation Full =
      S.Model.explain(G, N, Top[0].first, Assignment, 0);
  crf::NodeExplanation Cut =
      S.Model.explain(G, N, Top[0].first, Assignment, 2);
  EXPECT_LE(Cut.Paths.size(), 2u);
  // Total reflects ALL paths even when the list is truncated for display.
  EXPECT_NEAR(Cut.Total, Full.Total, 1e-12);
  for (size_t I = 1; I < Full.Paths.size(); ++I)
    EXPECT_GE(std::abs(Full.Paths[I - 1].Score),
              std::abs(Full.Paths[I].Score));
  if (!Full.Paths.empty() && !Cut.Paths.empty())
    EXPECT_EQ(Full.Paths[0].Path, Cut.Paths[0].Path);
}

//===----------------------------------------------------------------------===//
// SGNS explanation invariant
//===----------------------------------------------------------------------===//

TEST(SgnsExplain, ContributionsSumToEq4Score) {
  w2v::SgnsConfig Config;
  Config.Dim = 16;
  Config.Epochs = 3;
  w2v::Sgns Model(Config);
  std::vector<w2v::Pair> Pairs;
  for (uint32_t W = 0; W < 6; ++W)
    for (uint32_t C = 0; C < 9; ++C)
      if ((W + C) % 3 != 0)
        Pairs.push_back({W, C});
  Model.train(Pairs, 6, 9);

  // Repeated context ids: explain must fold multiplicity in.
  std::vector<uint32_t> Contexts = {1, 4, 4, 7, 2, 2, 2};
  auto Top = Model.topK(Contexts, 3);
  ASSERT_FALSE(Top.empty());
  for (const auto &[Word, Score] : Top) {
    auto Parts = Model.explain(Word, Contexts, /*K=*/0);
    EXPECT_EQ(Parts.size(), 4u); // distinct contexts: 1, 2, 4, 7
    double Sum = 0;
    for (const auto &[Ctx, Contribution] : Parts)
      Sum += Contribution;
    EXPECT_NEAR(Sum, Score, 1e-9);
  }
  // Truncation keeps the strongest-by-magnitude prefix.
  auto Cut = Model.explain(Top[0].first, Contexts, 2);
  ASSERT_EQ(Cut.size(), 2u);
  EXPECT_GE(std::abs(Cut[0].second), std::abs(Cut[1].second));
}

//===----------------------------------------------------------------------===//
// JSONL round-trip (the `pigeon explain` ↔ --trace contract)
//===----------------------------------------------------------------------===//

TEST(ProvenanceStream, ReportAndEventStreamCarrySameAttributions) {
  datagen::CorpusSpec Spec =
      datagen::defaultSpec(Language::JavaScript, /*Seed=*/11);
  Spec.NumProjects = 12;
  Corpus C = parseCorpus(datagen::generateCorpus(Spec),
                         Language::JavaScript);
  CrfExperimentOptions Options;
  Options.Extraction.MaxLength = 4;
  Options.Extraction.MaxWidth = 3;
  Options.Crf.Epochs = 2;

  telemetry::EventLog &Log = telemetry::EventLog::global();
  std::ostringstream OS;
  Log.attach(OS);
  std::vector<ExplainedPrediction> Rows = explainCrfPredictions(
      C, Task::VariableNames, Options, /*TopK=*/3, /*MaxNodes=*/6);
  Log.close();
  ASSERT_FALSE(Rows.empty());

  // Replay the stream: predictions arrive in report order, each followed
  // by its attribution records (the explain driver is single-threaded).
  std::istringstream In(OS.str());
  std::string Line;
  size_t Row = static_cast<size_t>(-1), Path = 0;
  size_t Predictions = 0, Attributions = 0;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::string Error;
    std::optional<json::Value> V = json::parse(Line, &Error);
    ASSERT_TRUE(V.has_value()) << Error << " in: " << Line;
    std::string Event = V->find("event")->str();
    if (Event == "prediction") {
      ++Row;
      Path = 0;
      ++Predictions;
      ASSERT_LT(Row, Rows.size());
      const ExplainedPrediction &P = Rows[Row];
      EXPECT_EQ(V->find("task")->str(), "vars");
      EXPECT_EQ(V->find("gold")->str(), P.Gold);
      EXPECT_EQ(V->find("predicted")->str(), P.Predicted);
      EXPECT_EQ(V->find("correct")->boolean(), P.Correct);
      EXPECT_NEAR(V->find("score")->number(), P.Score, 1e-9);
      EXPECT_NEAR(V->find("bias")->number(), P.Bias, 1e-9);
    } else if (Event == "attribution") {
      ++Attributions;
      ASSERT_LT(Row, Rows.size());
      const ExplainedPrediction &P = Rows[Row];
      ASSERT_LT(Path, P.Paths.size());
      const ExplainedPrediction::PathLine &L = P.Paths[Path++];
      // The stream carries exactly what the report prints.
      EXPECT_EQ(V->find("path")->str(), L.Path);
      EXPECT_EQ(V->find("unary")->boolean(), L.Unary);
      if (!L.Unary)
        EXPECT_EQ(V->find("neighbor")->str(), L.Neighbor);
      EXPECT_NEAR(V->find("score")->number(), L.Score, 1e-9);
      EXPECT_NEAR(V->find("weight")->number(), L.Weight, 1e-9);
      EXPECT_NEAR(V->find("vote")->number(), L.Vote, 1e-9);
    }
  }
  EXPECT_EQ(Predictions, Rows.size());
  size_t WantAttributions = 0;
  for (const ExplainedPrediction &P : Rows) {
    WantAttributions += P.Paths.size();
    EXPECT_LE(P.Paths.size(), 3u);
  }
  EXPECT_EQ(Attributions, WantAttributions);
}
