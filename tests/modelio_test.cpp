//===- modelio_test.cpp - Unit tests for whole-model persistence -----------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "core/ModelIO.h"

#include "lang/js/JsParser.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

/// Trains a small JS variable-name bundle.
ModelBundle trainBundle() {
  ModelBundle Bundle;
  Bundle.Lang = Language::JavaScript;
  Bundle.Interner = std::make_unique<StringInterner>();
  Bundle.Extraction = tunedExtraction(Language::JavaScript,
                                      Task::VariableNames);
  Bundle.TaskKind = Task::VariableNames;

  datagen::CorpusSpec Spec =
      datagen::defaultSpec(Language::JavaScript, /*Seed=*/5);
  Spec.NumProjects = 6;
  crf::ElementSelector Selector = selectorFor(Task::VariableNames);
  std::vector<crf::CrfGraph> Graphs;
  std::vector<std::optional<Tree>> Keep;
  for (const datagen::SourceFile &File : datagen::generateCorpus(Spec)) {
    lang::ParseResult R = js::parse(File.Text, *Bundle.Interner);
    EXPECT_TRUE(R.ok());
    Keep.push_back(std::move(R.Tree));
    auto Contexts = paths::extractPathContexts(
        *Keep.back(), Bundle.Extraction, Bundle.Table);
    Graphs.push_back(crf::buildGraph(*Keep.back(), Contexts, Selector));
  }
  Bundle.Model.train(Graphs);
  return Bundle;
}

std::map<std::string, std::string>
predictWith(ModelBundle &Bundle, const std::string &Source) {
  lang::ParseResult R = js::parse(Source, *Bundle.Interner);
  EXPECT_TRUE(R.Tree.has_value());
  auto Contexts = paths::extractPathContexts(*R.Tree, Bundle.Extraction,
                                             Bundle.Table);
  crf::CrfGraph G =
      crf::buildGraph(*R.Tree, Contexts, selectorFor(Bundle.TaskKind));
  std::vector<Symbol> Pred = Bundle.Model.predict(G);
  std::map<std::string, std::string> Out;
  for (uint32_t N : G.Unknowns)
    Out[std::string(Bundle.Interner->str(G.Nodes[N].Gold))] = std::string(
        Pred[N].isValid() ? Bundle.Interner->str(Pred[N])
                          : std::string_view());
  return Out;
}

const char *MinifiedFlag =
    "function f() { var a = false; while (!a) { if (check()) { a = true; } "
    "} return a; }";

TEST(ModelIO, RoundTripPredictsIdentically) {
  ModelBundle Original = trainBundle();
  auto Before = predictWith(Original, MinifiedFlag);
  ASSERT_FALSE(Before.empty());

  std::stringstream Buffer;
  saveModel(Buffer, Original);
  std::unique_ptr<ModelBundle> Restored = loadModel(Buffer);
  ASSERT_NE(Restored, nullptr);
  EXPECT_EQ(Restored->Lang, Original.Lang);
  EXPECT_EQ(Restored->TaskKind, Original.TaskKind);
  EXPECT_EQ(Restored->Extraction.MaxLength, Original.Extraction.MaxLength);
  EXPECT_EQ(Restored->Extraction.MaxWidth, Original.Extraction.MaxWidth);
  EXPECT_EQ(Restored->Interner->size(), Original.Interner->size());
  EXPECT_EQ(Restored->Table.size(), Original.Table.size());
  EXPECT_EQ(Restored->Model.numFeatures(), Original.Model.numFeatures());

  auto After = predictWith(*Restored, MinifiedFlag);
  EXPECT_EQ(Before, After);
}

TEST(ModelIO, PredictsFlagNameAfterReload) {
  ModelBundle Original = trainBundle();
  std::stringstream Buffer;
  saveModel(Buffer, Original);
  std::unique_ptr<ModelBundle> Restored = loadModel(Buffer);
  ASSERT_NE(Restored, nullptr);
  auto Pred = predictWith(*Restored, MinifiedFlag);
  ASSERT_TRUE(Pred.count("a"));
  EXPECT_EQ(Pred["a"], "done");
}

TEST(ModelIO, NewStringsInternAfterSavedOnes) {
  ModelBundle Original = trainBundle();
  std::stringstream Buffer;
  saveModel(Buffer, Original);
  std::unique_ptr<ModelBundle> Restored = loadModel(Buffer);
  ASSERT_NE(Restored, nullptr);
  size_t Saved = Restored->Interner->size();
  Symbol Fresh = Restored->Interner->intern("neverSeenBefore123");
  EXPECT_EQ(Fresh.index(), Saved);
}

TEST(ModelIO, RejectsGarbage) {
  std::stringstream Buffer("definitely not a model");
  EXPECT_EQ(loadModel(Buffer), nullptr);
}

TEST(ModelIO, RejectsTruncation) {
  ModelBundle Original = trainBundle();
  std::stringstream Buffer;
  saveModel(Buffer, Original);
  std::string Bytes = Buffer.str();
  // Chop in the middle of the interner section.
  std::stringstream Truncated(Bytes.substr(0, Bytes.size() / 3));
  EXPECT_EQ(loadModel(Truncated), nullptr);
}

TEST(ModelIO, RejectsWrongMagic) {
  ModelBundle Original = trainBundle();
  std::stringstream Buffer;
  saveModel(Buffer, Original);
  std::string Bytes = Buffer.str();
  Bytes[0] ^= 0x5a;
  std::stringstream Corrupted(Bytes);
  EXPECT_EQ(loadModel(Corrupted), nullptr);
}

TEST(ModelIO, RejectsVersionMismatch) {
  ModelBundle Original = trainBundle();
  std::stringstream Buffer;
  saveModel(Buffer, Original);
  std::string Bytes = Buffer.str();
  // A bundle from a future (or past) format version must not load.
  Bytes[4] ^= 0x01; // Low byte of the little-endian version field.
  std::stringstream Corrupted(Bytes);
  EXPECT_EQ(loadModel(Corrupted), nullptr);
}

TEST(ModelIO, RejectsTruncationAtEveryQuarter) {
  ModelBundle Original = trainBundle();
  std::stringstream Buffer;
  saveModel(Buffer, Original);
  std::string Bytes = Buffer.str();
  for (size_t Num = 1; Num <= 3; ++Num) {
    std::stringstream Truncated(Bytes.substr(0, Bytes.size() * Num / 4));
    EXPECT_EQ(loadModel(Truncated), nullptr) << "quarter " << Num;
  }
}

//===----------------------------------------------------------------------===//
// Round-trip across every language × task header combination
//===----------------------------------------------------------------------===//

class ModelIOMatrix
    : public ::testing::TestWithParam<std::tuple<Language, Task>> {};

TEST_P(ModelIOMatrix, RoundTripsHeaderAndTables) {
  auto [Lang, TaskKind] = GetParam();

  ModelBundle Bundle;
  Bundle.Lang = Lang;
  Bundle.Interner = std::make_unique<StringInterner>();
  Bundle.Extraction = tunedExtraction(Lang, TaskKind);
  Bundle.TaskKind = TaskKind;

  datagen::CorpusSpec Spec = datagen::defaultSpec(Lang, /*Seed=*/9);
  Spec.NumProjects = 3;
  std::vector<datagen::SourceFile> Sources = datagen::generateCorpus(Spec);
  Corpus C = parseCorpus(Sources, Lang);
  ASSERT_GT(C.Files.size(), 0u);
  Bundle.Interner = std::move(C.Interner);

  crf::ElementSelector Selector = selectorFor(TaskKind);
  std::vector<crf::CrfGraph> Graphs;
  for (const ParsedFile &File : C.Files) {
    auto Contexts = paths::extractPathContexts(File.Tree, Bundle.Extraction,
                                               Bundle.Table);
    Graphs.push_back(crf::buildGraph(File.Tree, Contexts, Selector));
  }
  Bundle.Model.train(Graphs);
  ASSERT_GT(Bundle.Table.size(), 0u);

  std::stringstream Buffer;
  saveModel(Buffer, Bundle);
  std::unique_ptr<ModelBundle> Restored = loadModel(Buffer);
  ASSERT_NE(Restored, nullptr);
  EXPECT_EQ(Restored->Lang, Lang);
  EXPECT_EQ(Restored->TaskKind, TaskKind);
  EXPECT_EQ(Restored->Extraction.MaxLength, Bundle.Extraction.MaxLength);
  EXPECT_EQ(Restored->Extraction.MaxWidth, Bundle.Extraction.MaxWidth);
  EXPECT_EQ(Restored->Extraction.Abst, Bundle.Extraction.Abst);
  EXPECT_EQ(Restored->Extraction.IncludeSemiPaths,
            Bundle.Extraction.IncludeSemiPaths);
  EXPECT_EQ(Restored->Model.numFeatures(), Bundle.Model.numFeatures());

  // The interner and packed path table must survive byte-exactly: PathIds
  // feed the feature hash, so any drift silently changes predictions.
  ASSERT_EQ(Restored->Interner->size(), Bundle.Interner->size());
  for (uint32_t I = 1; I < Bundle.Interner->size(); ++I)
    EXPECT_EQ(Restored->Interner->str(Symbol::fromIndex(I)),
              Bundle.Interner->str(Symbol::fromIndex(I)));
  ASSERT_EQ(Restored->Table.size(), Bundle.Table.size());
  for (paths::PathId Id = 1; Id <= Bundle.Table.size(); ++Id) {
    auto Want = Bundle.Table.bytes(Id);
    auto Got = Restored->Table.bytes(Id);
    ASSERT_EQ(Want.size(), Got.size()) << "path " << Id;
    EXPECT_TRUE(std::equal(Want.begin(), Want.end(), Got.begin()))
        << "path " << Id;
  }
}

std::string matrixName(
    const ::testing::TestParamInfo<std::tuple<Language, Task>> &Info) {
  static const char *Langs[] = {"Js", "Java", "Py", "Cs"};
  static const char *Tasks[] = {"Vars", "Methods", "Types"};
  return std::string(Langs[static_cast<int>(std::get<0>(Info.param))]) +
         Tasks[static_cast<int>(std::get<1>(Info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    AllLangsAllTasks, ModelIOMatrix,
    ::testing::Combine(::testing::Values(Language::JavaScript, Language::Java,
                                         Language::Python, Language::CSharp),
                       ::testing::Values(Task::VariableNames,
                                         Task::MethodNames, Task::FullTypes)),
    matrixName);

} // namespace
