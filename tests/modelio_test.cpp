//===- modelio_test.cpp - Unit tests for whole-model persistence -----------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "core/ModelIO.h"

#include "lang/js/JsParser.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

/// Trains a small JS variable-name bundle.
ModelBundle trainBundle() {
  ModelBundle Bundle;
  Bundle.Lang = Language::JavaScript;
  Bundle.Interner = std::make_unique<StringInterner>();
  Bundle.Extraction = tunedExtraction(Language::JavaScript,
                                      Task::VariableNames);
  Bundle.TaskKind = Task::VariableNames;

  datagen::CorpusSpec Spec =
      datagen::defaultSpec(Language::JavaScript, /*Seed=*/5);
  Spec.NumProjects = 6;
  crf::ElementSelector Selector = selectorFor(Task::VariableNames);
  std::vector<crf::CrfGraph> Graphs;
  std::vector<std::optional<Tree>> Keep;
  for (const datagen::SourceFile &File : datagen::generateCorpus(Spec)) {
    lang::ParseResult R = js::parse(File.Text, *Bundle.Interner);
    EXPECT_TRUE(R.ok());
    Keep.push_back(std::move(R.Tree));
    auto Contexts = paths::extractPathContexts(
        *Keep.back(), Bundle.Extraction, Bundle.Table);
    Graphs.push_back(crf::buildGraph(*Keep.back(), Contexts, Selector));
  }
  Bundle.Model.train(Graphs);
  return Bundle;
}

std::map<std::string, std::string>
predictWith(ModelBundle &Bundle, const std::string &Source) {
  lang::ParseResult R = js::parse(Source, *Bundle.Interner);
  EXPECT_TRUE(R.Tree.has_value());
  auto Contexts = paths::extractPathContexts(*R.Tree, Bundle.Extraction,
                                             Bundle.Table);
  crf::CrfGraph G =
      crf::buildGraph(*R.Tree, Contexts, selectorFor(Bundle.TaskKind));
  std::vector<Symbol> Pred = Bundle.Model.predict(G);
  std::map<std::string, std::string> Out;
  for (uint32_t N : G.Unknowns)
    Out[Bundle.Interner->str(G.Nodes[N].Gold)] =
        Pred[N].isValid() ? Bundle.Interner->str(Pred[N]) : "";
  return Out;
}

const char *MinifiedFlag =
    "function f() { var a = false; while (!a) { if (check()) { a = true; } "
    "} return a; }";

TEST(ModelIO, RoundTripPredictsIdentically) {
  ModelBundle Original = trainBundle();
  auto Before = predictWith(Original, MinifiedFlag);
  ASSERT_FALSE(Before.empty());

  std::stringstream Buffer;
  saveModel(Buffer, Original);
  std::unique_ptr<ModelBundle> Restored = loadModel(Buffer);
  ASSERT_NE(Restored, nullptr);
  EXPECT_EQ(Restored->Lang, Original.Lang);
  EXPECT_EQ(Restored->TaskKind, Original.TaskKind);
  EXPECT_EQ(Restored->Extraction.MaxLength, Original.Extraction.MaxLength);
  EXPECT_EQ(Restored->Extraction.MaxWidth, Original.Extraction.MaxWidth);
  EXPECT_EQ(Restored->Interner->size(), Original.Interner->size());
  EXPECT_EQ(Restored->Table.size(), Original.Table.size());
  EXPECT_EQ(Restored->Model.numFeatures(), Original.Model.numFeatures());

  auto After = predictWith(*Restored, MinifiedFlag);
  EXPECT_EQ(Before, After);
}

TEST(ModelIO, PredictsFlagNameAfterReload) {
  ModelBundle Original = trainBundle();
  std::stringstream Buffer;
  saveModel(Buffer, Original);
  std::unique_ptr<ModelBundle> Restored = loadModel(Buffer);
  ASSERT_NE(Restored, nullptr);
  auto Pred = predictWith(*Restored, MinifiedFlag);
  ASSERT_TRUE(Pred.count("a"));
  EXPECT_EQ(Pred["a"], "done");
}

TEST(ModelIO, NewStringsInternAfterSavedOnes) {
  ModelBundle Original = trainBundle();
  std::stringstream Buffer;
  saveModel(Buffer, Original);
  std::unique_ptr<ModelBundle> Restored = loadModel(Buffer);
  ASSERT_NE(Restored, nullptr);
  size_t Saved = Restored->Interner->size();
  Symbol Fresh = Restored->Interner->intern("neverSeenBefore123");
  EXPECT_EQ(Fresh.index(), Saved);
}

TEST(ModelIO, RejectsGarbage) {
  std::stringstream Buffer("definitely not a model");
  EXPECT_EQ(loadModel(Buffer), nullptr);
}

TEST(ModelIO, RejectsTruncation) {
  ModelBundle Original = trainBundle();
  std::stringstream Buffer;
  saveModel(Buffer, Original);
  std::string Bytes = Buffer.str();
  // Chop in the middle of the interner section.
  std::stringstream Truncated(Bytes.substr(0, Bytes.size() / 3));
  EXPECT_EQ(loadModel(Truncated), nullptr);
}

TEST(ModelIO, RejectsWrongMagic) {
  ModelBundle Original = trainBundle();
  std::stringstream Buffer;
  saveModel(Buffer, Original);
  std::string Bytes = Buffer.str();
  Bytes[0] ^= 0x5a;
  std::stringstream Corrupted(Bytes);
  EXPECT_EQ(loadModel(Corrupted), nullptr);
}

} // namespace
