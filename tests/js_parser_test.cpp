//===- js_parser_test.cpp - Unit tests for the MiniJS frontend -------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/js/JsParser.h"

#include <gtest/gtest.h>

using namespace pigeon;
using namespace pigeon::ast;

namespace {

/// Parses and returns the sexpr, failing the test on diagnostics.
std::string sexprOf(std::string_view Source) {
  StringInterner SI;
  lang::ParseResult R = js::parse(Source, SI);
  EXPECT_TRUE(R.Tree.has_value());
  for (const lang::Diagnostic &D : R.Diags)
    ADD_FAILURE() << "diagnostic: " << D.str() << " in: " << Source;
  return R.Tree ? R.Tree->sexpr() : "";
}

TEST(JsParser, EmptyProgram) {
  EXPECT_EQ(sexprOf(""), "(Toplevel)");
}

TEST(JsParser, VarDeclWithInit) {
  EXPECT_EQ(sexprOf("var d = false;"),
            "(Toplevel (Var (VarDef (SymbolVar d) (False false))))");
}

TEST(JsParser, MultipleDeclarators) {
  EXPECT_EQ(sexprOf("var a, b;"),
            "(Toplevel (Var (VarDef (SymbolVar a)) (VarDef (SymbolVar b))))");
}

TEST(JsParser, Fig1aWhileLoop) {
  // The paper's running example (Fig. 1a).
  std::string S = sexprOf("while (!d) {\n"
                          "  if (someCondition()) {\n"
                          "    d = true;\n"
                          "  }\n"
                          "}\n");
  EXPECT_EQ(S, "(Toplevel (While (UnaryPrefix! (SymbolRef d)) (Block (If "
               "(Call (SymbolRef someCondition)) (Block (SimpleStatement "
               "(Assign= (SymbolRef d) (True true))))))))");
}

TEST(JsParser, Fig4SubscriptStatement) {
  // Fig. 4: var item = array[i];
  EXPECT_EQ(sexprOf("var item = array[i];"),
            "(Toplevel (Var (VarDef (SymbolVar item) (Sub (SymbolRef array) "
            "(SymbolRef i)))))");
}

TEST(JsParser, FunctionDeclaration) {
  EXPECT_EQ(sexprOf("function f(a, b) { return a; }"),
            "(Toplevel (Defun (SymbolDefun f) (SymbolFunarg a) "
            "(SymbolFunarg b) (Return (SymbolRef a))))");
}

TEST(JsParser, MethodCallChain) {
  // Fig. 8's shape: request.open('GET', url, false);
  EXPECT_EQ(sexprOf("b.open('GET', a, false);"),
            "(Toplevel (SimpleStatement (Call (Dot (SymbolRef b) "
            "(Property open)) (Str GET) (SymbolRef a) (False false))))");
}

TEST(JsParser, BinaryPrecedence) {
  EXPECT_EQ(sexprOf("x = a + b * c;"),
            "(Toplevel (SimpleStatement (Assign= (SymbolRef x) (Binary+ "
            "(SymbolRef a) (Binary* (SymbolRef b) (SymbolRef c))))))");
}

TEST(JsParser, BinaryLeftAssociativity) {
  EXPECT_EQ(sexprOf("x = a - b - c;"),
            "(Toplevel (SimpleStatement (Assign= (SymbolRef x) (Binary- "
            "(Binary- (SymbolRef a) (SymbolRef b)) (SymbolRef c)))))");
}

TEST(JsParser, ParenthesesOverridePrecedence) {
  EXPECT_EQ(sexprOf("x = (a + b) * c;"),
            "(Toplevel (SimpleStatement (Assign= (SymbolRef x) (Binary* "
            "(Binary+ (SymbolRef a) (SymbolRef b)) (SymbolRef c)))))");
}

TEST(JsParser, LogicalOperators) {
  EXPECT_EQ(sexprOf("x = a && b || c;"),
            "(Toplevel (SimpleStatement (Assign= (SymbolRef x) (Binary|| "
            "(Binary&& (SymbolRef a) (SymbolRef b)) (SymbolRef c)))))");
}

TEST(JsParser, Comparison) {
  EXPECT_EQ(sexprOf("x = i < n;"),
            "(Toplevel (SimpleStatement (Assign= (SymbolRef x) (Binary< "
            "(SymbolRef i) (SymbolRef n)))))");
}

TEST(JsParser, StrictEquality) {
  EXPECT_EQ(sexprOf("x = a === b;"),
            "(Toplevel (SimpleStatement (Assign= (SymbolRef x) (Binary=== "
            "(SymbolRef a) (SymbolRef b)))))");
}

TEST(JsParser, UnaryNot) {
  EXPECT_EQ(sexprOf("x = !a;"),
            "(Toplevel (SimpleStatement (Assign= (SymbolRef x) (UnaryPrefix! "
            "(SymbolRef a)))))");
}

TEST(JsParser, PrefixIncrement) {
  EXPECT_EQ(sexprOf("++i;"),
            "(Toplevel (SimpleStatement (UnaryPrefix++ (SymbolRef i))))");
}

TEST(JsParser, PostfixIncrement) {
  EXPECT_EQ(sexprOf("i++;"),
            "(Toplevel (SimpleStatement (UnaryPostfix++ (SymbolRef i))))");
}

TEST(JsParser, CompoundAssignment) {
  EXPECT_EQ(sexprOf("total += x;"),
            "(Toplevel (SimpleStatement (Assign+= (SymbolRef total) "
            "(SymbolRef x))))");
}

TEST(JsParser, AssignmentToMember) {
  EXPECT_EQ(sexprOf("obj.field = 1;"),
            "(Toplevel (SimpleStatement (Assign= (Dot (SymbolRef obj) "
            "(Property field)) (Num 1))))");
}

TEST(JsParser, AssignmentToSubscript) {
  EXPECT_EQ(sexprOf("arr[i] = v;"),
            "(Toplevel (SimpleStatement (Assign= (Sub (SymbolRef arr) "
            "(SymbolRef i)) (SymbolRef v))))");
}

TEST(JsParser, ConditionalExpression) {
  EXPECT_EQ(sexprOf("x = a ? b : c;"),
            "(Toplevel (SimpleStatement (Assign= (SymbolRef x) (Conditional "
            "(SymbolRef a) (SymbolRef b) (SymbolRef c)))))");
}

TEST(JsParser, ClassicForLoop) {
  EXPECT_EQ(sexprOf("for (var i = 0; i < n; i++) { f(i); }"),
            "(Toplevel (For (Var (VarDef (SymbolVar i) (Num 0))) (Binary< "
            "(SymbolRef i) (SymbolRef n)) (UnaryPostfix++ (SymbolRef i)) "
            "(Block (SimpleStatement (Call (SymbolRef f) (SymbolRef i))))))");
}

TEST(JsParser, ForInLoop) {
  EXPECT_EQ(sexprOf("for (var k in obj) { f(k); }"),
            "(Toplevel (ForIn (SymbolVar k) (SymbolRef obj) (Block "
            "(SimpleStatement (Call (SymbolRef f) (SymbolRef k))))))");
}

TEST(JsParser, ForOfLoop) {
  EXPECT_EQ(sexprOf("for (var v of items) { f(v); }"),
            "(Toplevel (ForOf (SymbolVar v) (SymbolRef items) (Block "
            "(SimpleStatement (Call (SymbolRef f) (SymbolRef v))))))");
}

TEST(JsParser, DoWhile) {
  EXPECT_EQ(sexprOf("do { f(); } while (x);"),
            "(Toplevel (Do (Block (SimpleStatement (Call (SymbolRef f)))) "
            "(SymbolRef x)))");
}

TEST(JsParser, IfElse) {
  EXPECT_EQ(sexprOf("if (a) { f(); } else { g(); }"),
            "(Toplevel (If (SymbolRef a) (Block (SimpleStatement (Call "
            "(SymbolRef f)))) (Block (SimpleStatement (Call "
            "(SymbolRef g))))))");
}

TEST(JsParser, BreakContinue) {
  EXPECT_EQ(sexprOf("while (a) { break; }"),
            "(Toplevel (While (SymbolRef a) (Block (Break))))");
  EXPECT_EQ(sexprOf("while (a) { continue; }"),
            "(Toplevel (While (SymbolRef a) (Block (Continue))))");
}

TEST(JsParser, ThrowTryCatch) {
  EXPECT_EQ(sexprOf("try { f(); } catch (e) { g(e); }"),
            "(Toplevel (Try (Block (SimpleStatement (Call (SymbolRef f)))) "
            "(Catch (SymbolCatch e) (Block (SimpleStatement (Call "
            "(SymbolRef g) (SymbolRef e)))))))");
  EXPECT_EQ(sexprOf("throw err;"),
            "(Toplevel (Throw (SymbolRef err)))");
}

TEST(JsParser, ArrayLiteral) {
  EXPECT_EQ(sexprOf("var a = [1, 2];"),
            "(Toplevel (Var (VarDef (SymbolVar a) (Array (Num 1) "
            "(Num 2)))))");
}

TEST(JsParser, ObjectLiteral) {
  EXPECT_EQ(sexprOf("var o = {x: 1, y: b};"),
            "(Toplevel (Var (VarDef (SymbolVar o) (Object (ObjectKeyVal "
            "(ObjectKey x) (Num 1)) (ObjectKeyVal (ObjectKey y) "
            "(SymbolRef b))))))");
}

TEST(JsParser, FunctionExpression) {
  EXPECT_EQ(sexprOf("var f = function(x) { return x; };"),
            "(Toplevel (Var (VarDef (SymbolVar f) (Function (SymbolFunarg "
            "x) (Return (SymbolRef x))))))");
}

TEST(JsParser, NewExpression) {
  EXPECT_EQ(sexprOf("var r = new Client(url);"),
            "(Toplevel (Var (VarDef (SymbolVar r) (New (SymbolRef Client) "
            "(SymbolRef url)))))");
}

TEST(JsParser, NestedCallChains) {
  EXPECT_EQ(sexprOf("a.b.c(1)(2);"),
            "(Toplevel (SimpleStatement (Call (Call (Dot (Dot (SymbolRef a) "
            "(Property b)) (Property c)) (Num 1)) (Num 2))))");
}

TEST(JsParser, SubscriptChain) {
  EXPECT_EQ(sexprOf("m[i][j] = 0;"),
            "(Toplevel (SimpleStatement (Assign= (Sub (Sub (SymbolRef m) "
            "(SymbolRef i)) (SymbolRef j)) (Num 0))))");
}

TEST(JsParser, StringEscapes) {
  EXPECT_EQ(sexprOf("var s = 'a\\'b';"),
            "(Toplevel (Var (VarDef (SymbolVar s) (Str a\\'b))))");
}

TEST(JsParser, CommentsAreIgnored) {
  EXPECT_EQ(sexprOf("// line\nvar x = 1; /* block */"),
            "(Toplevel (Var (VarDef (SymbolVar x) (Num 1))))");
}

TEST(JsParser, TypeofOperator) {
  EXPECT_EQ(sexprOf("x = typeof v;"),
            "(Toplevel (SimpleStatement (Assign= (SymbolRef x) "
            "(UnaryPrefixtypeof (SymbolRef v)))))");
}

//===----------------------------------------------------------------------===//
// Element linking
//===----------------------------------------------------------------------===//

TEST(JsParserElements, DeclaredVarOccurrencesShareElement) {
  StringInterner SI;
  lang::ParseResult R =
      js::parse("var d = false; while (!d) { d = true; }", SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  // Find the element named "d": must be a predictable local with 3 uses.
  bool Found = false;
  for (ElementId E = 0; E < T.elements().size(); ++E) {
    if (SI.str(T.element(E).Name) != "d")
      continue;
    Found = true;
    EXPECT_EQ(T.element(E).Kind, ElementKind::LocalVar);
    EXPECT_TRUE(T.element(E).Predictable);
    EXPECT_EQ(T.occurrences(E).size(), 3u);
  }
  EXPECT_TRUE(Found);
}

TEST(JsParserElements, UndeclaredCalleeIsKnownMethod) {
  StringInterner SI;
  lang::ParseResult R = js::parse("while (!d) { someCondition(); }", SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  for (ElementId E = 0; E < T.elements().size(); ++E) {
    const ElementInfo &Info = T.element(E);
    if (SI.str(Info.Name) == "someCondition") {
      EXPECT_EQ(Info.Kind, ElementKind::Method);
      EXPECT_FALSE(Info.Predictable);
    }
    if (SI.str(Info.Name) == "d") {
      EXPECT_EQ(Info.Kind, ElementKind::LocalVar);
      EXPECT_TRUE(Info.Predictable);
    }
  }
}

TEST(JsParserElements, ShadowingCreatesDistinctElements) {
  StringInterner SI;
  lang::ParseResult R =
      js::parse("var x = 1; function f(x) { return x; }", SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  int XElements = 0;
  for (ElementId E = 0; E < T.elements().size(); ++E)
    if (SI.str(T.element(E).Name) == "x")
      ++XElements;
  EXPECT_EQ(XElements, 2) << "outer var and parameter must be distinct";
}

TEST(JsParserElements, FunctionNameIsPredictableMethod) {
  StringInterner SI;
  lang::ParseResult R = js::parse("function count(xs) { return xs; }", SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  bool Found = false;
  for (ElementId E = 0; E < T.elements().size(); ++E) {
    if (SI.str(T.element(E).Name) != "count")
      continue;
    Found = true;
    EXPECT_EQ(T.element(E).Kind, ElementKind::Method);
    EXPECT_TRUE(T.element(E).Predictable);
  }
  EXPECT_TRUE(Found);
}

TEST(JsParserElements, LocalCallResolvesToDefun) {
  StringInterner SI;
  lang::ParseResult R =
      js::parse("function helper() { return 1; } helper();", SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  for (ElementId E = 0; E < T.elements().size(); ++E) {
    if (SI.str(T.element(E).Name) == "helper") {
      EXPECT_EQ(T.occurrences(E).size(), 2u)
          << "definition and call site must be merged";
    }
  }
}

TEST(JsParserElements, PropertiesAreNotElements) {
  StringInterner SI;
  lang::ParseResult R = js::parse("obj.send(x);", SI);
  ASSERT_TRUE(R.Tree.has_value());
  const Tree &T = *R.Tree;
  for (ElementId E = 0; E < T.elements().size(); ++E)
    EXPECT_NE(SI.str(T.element(E).Name), "send");
}

//===----------------------------------------------------------------------===//
// Error handling
//===----------------------------------------------------------------------===//

TEST(JsParserErrors, ReportsUnterminatedString) {
  StringInterner SI;
  lang::ParseResult R = js::parse("var s = 'oops", SI);
  EXPECT_FALSE(R.Diags.empty());
}

TEST(JsParserErrors, ReportsMissingParen) {
  StringInterner SI;
  lang::ParseResult R = js::parse("if (a { f(); }", SI);
  EXPECT_FALSE(R.Diags.empty());
}

TEST(JsParserErrors, RecoversAndKeepsParsing) {
  StringInterner SI;
  lang::ParseResult R = js::parse("var = 1; var ok = 2;", SI);
  ASSERT_TRUE(R.Tree.has_value());
  EXPECT_FALSE(R.Diags.empty());
  // The second statement must still be present.
  EXPECT_NE(R.Tree->sexpr().find("(SymbolVar ok)"), std::string::npos);
}

TEST(JsParserErrors, NeverInfiniteLoopsOnGarbage) {
  StringInterner SI;
  lang::ParseResult R = js::parse("@@@@ ### $$$$", SI);
  ASSERT_TRUE(R.Tree.has_value());
  EXPECT_FALSE(R.Diags.empty());
}

TEST(JsParserRecovery, OperatorDriftRaisesDiagnosticNotUB) {
  // `a - - - b`: the binary-chain lookahead counts two '-' at the additive
  // level (the second minus re-arms PrevWasOperand), but the parser's
  // unary path consumes `- - b` whole — the replay then meets ';' where it
  // expected '-'. Pre-fix this was a bare assert, compiled out of Release
  // builds, silently producing a wrong AST; it must now surface as an
  // always-on "operator drift" diagnostic so the pipeline drops the file.
  StringInterner SI;
  lang::ParseResult R = js::parse("var x = a - - - b;", SI);
  ASSERT_TRUE(R.Tree.has_value());
  bool SawDrift = false;
  for (const lang::Diagnostic &D : R.Diags)
    SawDrift |= D.Message.find("operator drift") != std::string::npos;
  EXPECT_TRUE(SawDrift) << "drift must raise a diagnostic: "
                        << (R.Diags.empty() ? "(none)" : R.Diags[0].str());
}

} // namespace
