#!/bin/sh
# End-to-end smoke for `pigeon serve --stdio`: pipe one valid request,
# one malformed line, and one unknown-language request through a real
# server process. The server must answer all three (one prediction, two
# structured errors), keep running across the bad inputs, and exit 0 on
# EOF. Run as: serve_cli_test.sh <path-to-pigeon-binary>.
set -u

PIGEON="$1"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

"$PIGEON" synth --lang js --out "$TMP/corpus" --projects 3 --seed 7 \
  > /dev/null 2>&1 || fail "synth failed"
"$PIGEON" train --lang js --task vars --out "$TMP/model.bin" "$TMP/corpus" \
  > /dev/null 2>&1 || fail "train failed"

cat > "$TMP/requests" <<'EOF'
{"id":1,"lang":"js","source":"function f(x) { var total = x + 1; return total; }","k":2}
this line is not json
{"id":3,"lang":"golang","source":"package main"}
EOF

"$PIGEON" serve --model "$TMP/model.bin" --stdio \
  < "$TMP/requests" > "$TMP/responses" 2> "$TMP/serve.err" \
  || fail "serve exited nonzero on EOF: $(cat "$TMP/serve.err")"

[ "$(wc -l < "$TMP/responses")" = 3 ] \
  || fail "expected 3 response lines, got: $(cat "$TMP/responses")"

grep -q '"id":1,"ok":true' "$TMP/responses" \
  || fail "valid request did not get an ok response"
grep -q '"candidates":\[{"label":' "$TMP/responses" \
  || fail "ok response carries no prediction candidates"
grep -q '"code":"bad_request"' "$TMP/responses" \
  || fail "malformed line did not get a bad_request error"
grep -q '"id":3,"ok":false.*"code":"unknown_lang"' "$TMP/responses" \
  || fail "unknown language did not get an unknown_lang error"

echo "PASS"
