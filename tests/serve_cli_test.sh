#!/bin/sh
# End-to-end smoke for `pigeon serve --stdio`: pipe one valid request,
# one malformed line, and one unknown-language request through a real
# server process. The server must answer all three (one prediction, two
# structured errors), keep running across the bad inputs, and exit 0 on
# EOF. Also smokes the request-tracing surface: rid echo, the "timing"
# request flag, --trace/--slow-log/--flightrec capture files, the
# admin:"flightrec" verb, and the trace_report folding tool.
# Run as: serve_cli_test.sh <path-to-pigeon-binary> <path-to-trace_report>.
set -u

PIGEON="$1"
TRACE_REPORT="$2"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

"$PIGEON" synth --lang js --out "$TMP/corpus" --projects 3 --seed 7 \
  > /dev/null 2>&1 || fail "synth failed"
"$PIGEON" train --lang js --task vars --out "$TMP/model.bin" "$TMP/corpus" \
  > /dev/null 2>&1 || fail "train failed"

cat > "$TMP/requests" <<'EOF'
{"id":1,"lang":"js","source":"function f(x) { var total = x + 1; return total; }","k":2}
this line is not json
{"id":3,"lang":"golang","source":"package main"}
EOF

"$PIGEON" serve --model "$TMP/model.bin" --stdio \
  < "$TMP/requests" > "$TMP/responses" 2> "$TMP/serve.err" \
  || fail "serve exited nonzero on EOF: $(cat "$TMP/serve.err")"

[ "$(wc -l < "$TMP/responses")" = 3 ] \
  || fail "expected 3 response lines, got: $(cat "$TMP/responses")"

grep -q '"id":1,"ok":true' "$TMP/responses" \
  || fail "valid request did not get an ok response"
grep -q '"candidates":\[{"label":' "$TMP/responses" \
  || fail "ok response carries no prediction candidates"
grep -q '"code":"bad_request"' "$TMP/responses" \
  || fail "malformed line did not get a bad_request error"
grep -q '"id":3,"ok":false.*"code":"unknown_lang"' "$TMP/responses" \
  || fail "unknown language did not get an unknown_lang error"

# Every admitted request — ok or error — echoes its admission-order rid
# right after the schema field.
grep -q '"schema":"pigeon.serve.v1","rid":1,"id":1,"ok":true' \
  "$TMP/responses" || fail "first response does not echo rid 1"
grep -q '"rid":3,"id":3,"ok":false' "$TMP/responses" \
  || fail "error response does not echo its rid"

# --- Request-scoped tracing over --stdio -------------------------------
# A "timing": true request echoes its per-stage decomposition inline;
# --trace/--slow-log/--flightrec persist the request timeline to disk
# (threshold 0 captures every request).
cat > "$TMP/traced_requests" <<'EOF'
{"id":20,"lang":"js","source":"function h(z) { var twice = z + z; return twice; }","timing":true}
{"id":21,"lang":"js","source":"function k(w) { var half = w / 2; return half; }"}
EOF

"$PIGEON" serve --model "$TMP/model.bin" --stdio \
  --trace "$TMP/trace.jsonl" --trace-max-mb 8 \
  --slow-log "$TMP/slow.jsonl" --slow-trace-ms 0 \
  --flightrec "$TMP/flight.jsonl" \
  < "$TMP/traced_requests" > "$TMP/traced_responses" 2> "$TMP/traced.err" \
  || fail "traced serve exited nonzero: $(cat "$TMP/traced.err")"

grep -q '"id":20,"ok":true.*"timing":{"queue_ms":' "$TMP/traced_responses" \
  || fail "timing:true request did not echo a stage decomposition"
grep -q '"total_ms":' "$TMP/traced_responses" \
  || fail "timing echo carries no total_ms"
grep -q '"id":21,"ok":true' "$TMP/traced_responses" \
  || fail "second traced request did not answer"
if grep '"id":21' "$TMP/traced_responses" | grep -q '"timing"'; then
  fail "response without the flag must not carry a timing object"
fi

[ -s "$TMP/trace.jsonl" ] || fail "--trace wrote no event stream"
grep -q '"event":"serve.request"' "$TMP/trace.jsonl" \
  || fail "event stream has no serve.request records"
[ -s "$TMP/slow.jsonl" ] || fail "--slow-log captured nothing at threshold 0"
grep -q '"schema":"pigeon.slowlog.v1"' "$TMP/slow.jsonl" \
  || fail "slow log entries lack the pigeon.slowlog.v1 schema"
grep -q '"batch_rids":\[' "$TMP/slow.jsonl" \
  || fail "slow log entries lack batch context"
[ -s "$TMP/flight.jsonl" ] || fail "--flightrec dumped no ring"
grep -q '"event":"serve.request"' "$TMP/flight.jsonl" \
  || fail "flight recorder dump has no request records"

# trace_report folds the event stream and the slow log into a latency
# decomposition; mixed inputs are fine.
"$TRACE_REPORT" "$TMP/trace.jsonl" "$TMP/slow.jsonl" > "$TMP/report.txt" \
  2> "$TMP/report.err" \
  || fail "trace_report failed: $(cat "$TMP/report.err")"
grep -q 'latency decomposition' "$TMP/report.txt" \
  || fail "trace_report printed no decomposition table"
grep -q 'predict' "$TMP/report.txt" \
  || fail "trace_report table lacks the predict stage"
grep -q 'slowest requests' "$TMP/report.txt" \
  || fail "trace_report printed no slowest-requests table"

# --- Admin protocol over --stdio ---------------------------------------
# Mixed serve + admin traffic: the admin lines answer under the
# pigeon.admin.v1 schema, the serve line under pigeon.serve.v1, and an
# unknown verb is a structured bad_request that does not kill the server.
cat > "$TMP/admin_requests" <<'EOF'
{"id":10,"admin":"health"}
{"id":11,"lang":"js","source":"function g(y) { var out = y * 2; return out; }"}
{"id":12,"admin":"metrics"}
{"id":13,"admin":"slo"}
{"id":14,"admin":"frobnicate"}
{"id":15,"admin":"flightrec"}
EOF

"$PIGEON" serve --model "$TMP/model.bin" --stdio --slo-p99-ms 5000 \
  --prom "$TMP/metrics.prom" --metrics-interval 1 \
  < "$TMP/admin_requests" > "$TMP/admin_responses" 2> "$TMP/admin.err" \
  || fail "serve with admin traffic exited nonzero: $(cat "$TMP/admin.err")"

[ "$(wc -l < "$TMP/admin_responses")" = 6 ] \
  || fail "expected 6 admin-mix responses, got: $(cat "$TMP/admin_responses")"

grep -q '"schema":"pigeon.admin.v1","id":10,"ok":true,"admin":"health"' \
  "$TMP/admin_responses" || fail "admin:health did not answer"
grep -q '"status":"ok"' "$TMP/admin_responses" \
  || fail "health response carries no status"
grep -q '"id":11,"ok":true' "$TMP/admin_responses" \
  || fail "serve request between admin lines did not answer"
grep -q '"admin":"metrics".*"schema":"pigeon.metrics.v1"' \
  "$TMP/admin_responses" || fail "admin:metrics has no embedded snapshot"
grep -q '"admin":"metrics".*"serve.request.seconds"' \
  "$TMP/admin_responses" || fail "metrics snapshot has no windowed series"
grep -q '"admin":"slo".*"target_p99_ms":5000' "$TMP/admin_responses" \
  || fail "admin:slo does not echo the --slo-p99-ms target"
grep -q '"schema":"pigeon.admin.v1","id":14,"ok":false.*"code":"bad_request"' \
  "$TMP/admin_responses" || fail "unknown admin verb not a bad_request"
grep -q '"admin":"health".*"window":{"seconds":' "$TMP/admin_responses" \
  || fail "admin:health carries no windowed request/error rates"
grep -q '"id":15,"ok":true,"admin":"flightrec","flightrec":{"capacity":' \
  "$TMP/admin_responses" || fail "admin:flightrec did not answer"
grep -q '"admin":"flightrec".*"records":\[{"event":' "$TMP/admin_responses" \
  || fail "flightrec records are empty despite earlier traffic"

# --prom writes Prometheus text exposition at shutdown (and every
# --metrics-interval tick while running).
[ -s "$TMP/metrics.prom" ] || fail "--prom wrote no exposition file"
grep -q '^serve_requests_total ' "$TMP/metrics.prom" \
  || fail "exposition lacks serve_requests_total"
grep -q '^serve_request_seconds_bucket{le=' "$TMP/metrics.prom" \
  || fail "exposition lacks serve_request_seconds histogram buckets"
grep -q '^# TYPE serve_request_seconds histogram' "$TMP/metrics.prom" \
  || fail "exposition lacks TYPE headers"
[ -f "$TMP/metrics.prom.tmp" ] && fail "atomic-write staging file left behind"

echo "PASS"
