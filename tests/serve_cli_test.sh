#!/bin/sh
# End-to-end smoke for `pigeon serve --stdio`: pipe one valid request,
# one malformed line, and one unknown-language request through a real
# server process. The server must answer all three (one prediction, two
# structured errors), keep running across the bad inputs, and exit 0 on
# EOF. Run as: serve_cli_test.sh <path-to-pigeon-binary>.
set -u

PIGEON="$1"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

"$PIGEON" synth --lang js --out "$TMP/corpus" --projects 3 --seed 7 \
  > /dev/null 2>&1 || fail "synth failed"
"$PIGEON" train --lang js --task vars --out "$TMP/model.bin" "$TMP/corpus" \
  > /dev/null 2>&1 || fail "train failed"

cat > "$TMP/requests" <<'EOF'
{"id":1,"lang":"js","source":"function f(x) { var total = x + 1; return total; }","k":2}
this line is not json
{"id":3,"lang":"golang","source":"package main"}
EOF

"$PIGEON" serve --model "$TMP/model.bin" --stdio \
  < "$TMP/requests" > "$TMP/responses" 2> "$TMP/serve.err" \
  || fail "serve exited nonzero on EOF: $(cat "$TMP/serve.err")"

[ "$(wc -l < "$TMP/responses")" = 3 ] \
  || fail "expected 3 response lines, got: $(cat "$TMP/responses")"

grep -q '"id":1,"ok":true' "$TMP/responses" \
  || fail "valid request did not get an ok response"
grep -q '"candidates":\[{"label":' "$TMP/responses" \
  || fail "ok response carries no prediction candidates"
grep -q '"code":"bad_request"' "$TMP/responses" \
  || fail "malformed line did not get a bad_request error"
grep -q '"id":3,"ok":false.*"code":"unknown_lang"' "$TMP/responses" \
  || fail "unknown language did not get an unknown_lang error"

# --- Admin protocol over --stdio ---------------------------------------
# Mixed serve + admin traffic: the admin lines answer under the
# pigeon.admin.v1 schema, the serve line under pigeon.serve.v1, and an
# unknown verb is a structured bad_request that does not kill the server.
cat > "$TMP/admin_requests" <<'EOF'
{"id":10,"admin":"health"}
{"id":11,"lang":"js","source":"function g(y) { var out = y * 2; return out; }"}
{"id":12,"admin":"metrics"}
{"id":13,"admin":"slo"}
{"id":14,"admin":"frobnicate"}
EOF

"$PIGEON" serve --model "$TMP/model.bin" --stdio --slo-p99-ms 5000 \
  --prom "$TMP/metrics.prom" --metrics-interval 1 \
  < "$TMP/admin_requests" > "$TMP/admin_responses" 2> "$TMP/admin.err" \
  || fail "serve with admin traffic exited nonzero: $(cat "$TMP/admin.err")"

[ "$(wc -l < "$TMP/admin_responses")" = 5 ] \
  || fail "expected 5 admin-mix responses, got: $(cat "$TMP/admin_responses")"

grep -q '"schema":"pigeon.admin.v1","id":10,"ok":true,"admin":"health"' \
  "$TMP/admin_responses" || fail "admin:health did not answer"
grep -q '"status":"ok"' "$TMP/admin_responses" \
  || fail "health response carries no status"
grep -q '"id":11,"ok":true' "$TMP/admin_responses" \
  || fail "serve request between admin lines did not answer"
grep -q '"admin":"metrics".*"schema":"pigeon.metrics.v1"' \
  "$TMP/admin_responses" || fail "admin:metrics has no embedded snapshot"
grep -q '"admin":"metrics".*"serve.request.seconds"' \
  "$TMP/admin_responses" || fail "metrics snapshot has no windowed series"
grep -q '"admin":"slo".*"target_p99_ms":5000' "$TMP/admin_responses" \
  || fail "admin:slo does not echo the --slo-p99-ms target"
grep -q '"schema":"pigeon.admin.v1","id":14,"ok":false.*"code":"bad_request"' \
  "$TMP/admin_responses" || fail "unknown admin verb not a bad_request"

# --prom writes Prometheus text exposition at shutdown (and every
# --metrics-interval tick while running).
[ -s "$TMP/metrics.prom" ] || fail "--prom wrote no exposition file"
grep -q '^serve_requests_total ' "$TMP/metrics.prom" \
  || fail "exposition lacks serve_requests_total"
grep -q '^serve_request_seconds_bucket{le=' "$TMP/metrics.prom" \
  || fail "exposition lacks serve_request_seconds histogram buckets"
grep -q '^# TYPE serve_request_seconds histogram' "$TMP/metrics.prom" \
  || fail "exposition lacks TYPE headers"
[ -f "$TMP/metrics.prom.tmp" ] && fail "atomic-write staging file left behind"

echo "PASS"
