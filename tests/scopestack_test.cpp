//===- scopestack_test.cpp - Unit tests for lexical scoping ----------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/common/ScopeStack.h"

#include <gtest/gtest.h>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::lang;

namespace {

TEST(ScopeStack, GlobalDeclareAndLookup) {
  StringInterner SI;
  ScopeStack S;
  Symbol X = SI.intern("x");
  EXPECT_EQ(S.lookup(X), InvalidElement);
  S.declare(X, 7);
  EXPECT_EQ(S.lookup(X), 7u);
}

TEST(ScopeStack, InnerScopeShadowsOuter) {
  StringInterner SI;
  ScopeStack S;
  Symbol X = SI.intern("x");
  S.declare(X, 1);
  S.push();
  S.declare(X, 2);
  EXPECT_EQ(S.lookup(X), 2u);
  S.pop();
  EXPECT_EQ(S.lookup(X), 1u);
}

TEST(ScopeStack, LookupWalksOutward) {
  StringInterner SI;
  ScopeStack S;
  Symbol X = SI.intern("x"), Y = SI.intern("y");
  S.declare(X, 1);
  S.push();
  S.declare(Y, 2);
  EXPECT_EQ(S.lookup(X), 1u) << "outer binding visible from inner scope";
  EXPECT_EQ(S.lookup(Y), 2u);
  S.pop();
  EXPECT_EQ(S.lookup(Y), InvalidElement) << "inner binding dropped on pop";
}

TEST(ScopeStack, DeclareGlobalFromInnerScope) {
  StringInterner SI;
  ScopeStack S;
  Symbol X = SI.intern("x");
  S.push();
  S.declareGlobal(X, 9);
  S.pop();
  EXPECT_EQ(S.lookup(X), 9u);
}

TEST(ScopeStack, DeclaredInCurrentIsScopeLocal) {
  StringInterner SI;
  ScopeStack S;
  Symbol X = SI.intern("x");
  S.declare(X, 1);
  S.push();
  EXPECT_FALSE(S.declaredInCurrent(X));
  S.declare(X, 2);
  EXPECT_TRUE(S.declaredInCurrent(X));
}

TEST(ScopeStack, DepthTracksPushPop) {
  ScopeStack S;
  EXPECT_EQ(S.depth(), 1u);
  S.push();
  S.push();
  EXPECT_EQ(S.depth(), 3u);
  S.pop();
  EXPECT_EQ(S.depth(), 2u);
}

TEST(ScopeStack, RedeclareInSameScopeOverwrites) {
  StringInterner SI;
  ScopeStack S;
  Symbol X = SI.intern("x");
  S.declare(X, 1);
  S.declare(X, 5);
  EXPECT_EQ(S.lookup(X), 5u);
}

} // namespace
