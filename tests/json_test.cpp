//===- json_test.cpp - Unit tests for support/Json -------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <string>

using namespace pigeon;
using namespace pigeon::json;

TEST(JsonParse, Literals) {
  EXPECT_TRUE(parse("null")->isNull());
  EXPECT_TRUE(parse("true")->boolean());
  EXPECT_FALSE(parse("false")->boolean());
  EXPECT_DOUBLE_EQ(parse("0")->number(), 0.0);
  EXPECT_DOUBLE_EQ(parse("-12.5e2")->number(), -1250.0);
  EXPECT_EQ(parse("\"hi\"")->str(), "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse("\"a\\\"b\\\\c\\n\\t\"")->str(), "a\"b\\c\n\t");
  // \u escapes, including a surrogate pair (U+1F600).
  EXPECT_EQ(parse("\"\\u0041\"")->str(), "A");
  EXPECT_EQ(parse("\"\\u00e9\"")->str(), "\xc3\xa9");
  EXPECT_EQ(parse("\"\\ud83d\\ude00\"")->str(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, ContainersPreserveOrder) {
  std::optional<Value> V =
      parse("{\"b\":[1,2,3],\"a\":{\"x\":null},\"b\":4}");
  ASSERT_TRUE(V && V->isObject());
  const auto &Members = V->object();
  ASSERT_EQ(Members.size(), 3u); // duplicates kept, document order
  EXPECT_EQ(Members[0].first, "b");
  EXPECT_EQ(Members[1].first, "a");
  // find() returns the first occurrence.
  ASSERT_NE(V->find("b"), nullptr);
  EXPECT_TRUE(V->find("b")->isArray());
  EXPECT_EQ(V->find("b")->array().size(), 3u);
  EXPECT_DOUBLE_EQ(V->find("b")->array()[2].number(), 3.0);
  EXPECT_EQ(V->find("missing"), nullptr);
}

TEST(JsonParse, OrAccessorsSubstituteOnMismatch) {
  std::optional<Value> V = parse("{\"n\":3,\"s\":\"x\"}");
  ASSERT_TRUE(V);
  EXPECT_DOUBLE_EQ(V->find("n")->numberOr(-1), 3.0);
  EXPECT_DOUBLE_EQ(V->find("s")->numberOr(-1), -1.0);
  EXPECT_EQ(V->find("s")->strOr("d"), "x");
  EXPECT_EQ(V->find("n")->strOr("d"), "d");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  std::string Error;
  EXPECT_FALSE(parse("", &Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(parse("{\"a\":1,}"));     // trailing comma
  EXPECT_FALSE(parse("[1 2]"));          // missing comma
  EXPECT_FALSE(parse("{\"a\" 1}"));      // missing colon
  EXPECT_FALSE(parse("\"unterminated")); // unterminated string
  EXPECT_FALSE(parse("01"));             // leading zero
  EXPECT_FALSE(parse("1."));             // bare trailing dot
  EXPECT_FALSE(parse("\"a\\q\""));       // unknown escape
  EXPECT_FALSE(parse("nul"));            // truncated literal
}

TEST(JsonParse, RejectsTrailingGarbageAndBareNonFinite) {
  EXPECT_FALSE(parse("{} extra"));
  EXPECT_FALSE(parse("1 2"));
  // Our writers emit null for non-finite numbers; the parser holds them
  // to that.
  EXPECT_FALSE(parse("NaN"));
  EXPECT_FALSE(parse("Infinity"));
  EXPECT_FALSE(parse("-Infinity"));
}

TEST(JsonParse, ErrorCarriesByteOffset) {
  std::string Error;
  EXPECT_FALSE(parse("[1,]", &Error));
  EXPECT_NE(Error.find("offset"), std::string::npos);
}

TEST(JsonParse, DepthGuardStopsRunawayNesting) {
  std::string Deep(1000, '[');
  Deep += std::string(1000, ']');
  EXPECT_FALSE(parse(Deep));
  // A modestly nested document is fine.
  EXPECT_TRUE(parse("[[[[[[[[[[0]]]]]]]]]]"));
}

TEST(JsonParse, SurroundingWhitespaceAllowed) {
  std::optional<Value> V = parse("  \n\t {\"a\": 1}  \n");
  ASSERT_TRUE(V);
  EXPECT_DOUBLE_EQ(V->find("a")->number(), 1.0);
}
